package client

import (
	"bufio"
	"context"
	"fmt"
	"net"

	dbpl "repro"

	"repro/internal/value"
	"repro/internal/wire"
)

// framer owns the buffered stream and the request/response discipline.
type framer struct {
	br *bufio.Reader
	bw *bufio.Writer
}

func newFramer(conn net.Conn) *framer {
	return &framer{br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

type frame struct {
	typ     byte
	payload []byte
}

// roundTrip writes one request and reads one response. A TErr response is
// returned as rerr (the connection stays usable); transport failures come
// back as err.
func (f *framer) roundTrip(typ byte, payload []byte) (resp frame, rerr error, err error) {
	if err := wire.WriteFrame(f.bw, typ, payload); err != nil {
		return frame{}, nil, err
	}
	if err := f.bw.Flush(); err != nil {
		return frame{}, nil, err
	}
	rtyp, rpayload, err := wire.ReadFrame(f.br)
	if err != nil {
		return frame{}, nil, err
	}
	if rtyp == wire.TErr {
		return frame{typ: rtyp}, wire.AsRemote(rpayload), nil
	}
	return frame{typ: rtyp, payload: rpayload}, nil, nil
}

// Rows is a streaming cursor over a remote query result, mirroring
// dbpl.Rows: Next/Scan/Err/Close, Columns, and an up-front Len. Tuples
// arrive in fetch-size batches pulled on demand (client-driven backpressure);
// the server holds the materialized snapshot until the cursor is closed or
// exhausted. Not safe for concurrent use.
type Rows struct {
	c     *DB
	ctx   context.Context
	id    uint64
	cols  []string
	total int

	buf    []value.Tuple
	pos    int
	cur    value.Tuple
	done   bool // server exhausted the cursor (it is already released there)
	closed bool
	err    error
}

// newRows parses a TRowsHeader payload into a cursor.
func (c *DB) newRows(ctx context.Context, header []byte) (*Rows, error) {
	d := wire.NewDec(header)
	id, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	ncols, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	cols := make([]string, 0, ncols)
	for range ncols {
		col, err := d.Str()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	total, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	return &Rows{c: c, ctx: ctx, id: id, cols: cols, total: int(total)}, nil
}

// Columns returns the attribute names of the result relation.
func (r *Rows) Columns() []string { return r.cols }

// Len returns the total number of result tuples (known up front: DBPL
// queries produce sets; the server materializes before the header).
func (r *Rows) Len() int { return r.total }

// fetch pulls the next batch from the server.
func (r *Rows) fetch() bool {
	e := wire.NewEnc()
	e.Uvarint(r.id)
	e.Uvarint(uint64(r.c.fetchSize))
	payload, err := e.Payload()
	if err != nil {
		r.setErr(err)
		return false
	}
	resp, err := r.c.exchange(r.ctx, wire.TFetch, payload, wire.TRowsBatch)
	if err != nil {
		r.setErr(err)
		r.done = true // the server dropped the cursor along with the error
		return false
	}
	d := wire.NewDec(resp)
	n, err := d.Uvarint()
	if err != nil {
		r.setErr(err)
		return false
	}
	arity := len(r.cols)
	r.buf = r.buf[:0]
	r.pos = 0
	for range n {
		tp := make(value.Tuple, arity)
		for i := range arity {
			v, err := d.Value()
			if err != nil {
				r.setErr(err)
				return false
			}
			tp[i] = v
		}
		r.buf = append(r.buf, tp)
	}
	done, err := d.Bool()
	if err != nil {
		r.setErr(err)
		return false
	}
	r.done = done
	return n > 0
}

// Next advances to the next tuple, fetching a batch from the server when the
// local buffer runs dry. It returns false once the cursor is exhausted,
// closed, canceled, or a Scan has failed; Err distinguishes exhaustion from
// failure.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if err := r.ctx.Err(); err != nil {
		r.setErr(err)
		r.Close()
		return false
	}
	if r.pos >= len(r.buf) {
		if r.done || !r.fetch() {
			r.Close()
			return false
		}
	}
	r.cur = r.buf[r.pos]
	r.pos++
	return true
}

// Tuple returns the current tuple (valid after a true Next).
func (r *Rows) Tuple() dbpl.Tuple { return r.cur }

func (r *Rows) setErr(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Scan copies the current tuple's values into dest with the same destination
// types and conversions as the embedded dbpl.Rows.Scan: *string, *int,
// *int64, *bool, *dbpl.Value, or *any.
func (r *Rows) Scan(dest ...any) error {
	if err := r.scan(dest); err != nil {
		r.setErr(err)
		return err
	}
	return nil
}

func (r *Rows) scan(dest []any) error {
	if r.cur == nil {
		return fmt.Errorf("dbpl: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("dbpl: Scan expected %d destination(s), got %d", len(r.cur), len(dest))
	}
	for i, d := range dest {
		v := r.cur[i]
		switch p := d.(type) {
		case *dbpl.Value:
			*p = v
		case *any:
			switch v.Kind() {
			case value.KindString:
				*p = v.AsString()
			case value.KindInt:
				*p = v.AsInt()
			case value.KindBool:
				*p = v.AsBool()
			default:
				return fmt.Errorf("dbpl: Scan column %q: cannot scan %s value into *any", r.cols[i], v.Kind())
			}
		case *string:
			if v.Kind() != value.KindString {
				return fmt.Errorf("dbpl: Scan column %q: cannot scan %s into *string", r.cols[i], v.Kind())
			}
			*p = v.AsString()
		case *int64:
			if v.Kind() != value.KindInt {
				return fmt.Errorf("dbpl: Scan column %q: cannot scan %s into *int64", r.cols[i], v.Kind())
			}
			*p = v.AsInt()
		case *int:
			if v.Kind() != value.KindInt {
				return fmt.Errorf("dbpl: Scan column %q: cannot scan %s into *int", r.cols[i], v.Kind())
			}
			*p = int(v.AsInt())
		case *bool:
			if v.Kind() != value.KindBool {
				return fmt.Errorf("dbpl: Scan column %q: cannot scan %s into *bool", r.cols[i], v.Kind())
			}
			*p = v.AsBool()
		default:
			return fmt.Errorf("dbpl: Scan column %q: unsupported destination type %T", r.cols[i], d)
		}
	}
	return nil
}

// Err returns the first error encountered during iteration; nil after a loop
// that simply exhausted the cursor.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor, on the server too if it still holds it. It is
// idempotent, safe after exhaustion, and preserves Err.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cur = nil
	r.buf = nil
	if r.done {
		return nil // exhausted: the server already dropped it
	}
	e := wire.NewEnc()
	e.Uvarint(r.id)
	payload, err := e.Payload()
	if err != nil {
		return err
	}
	// Use a background context: the query's ctx may already be canceled, and
	// the release must still reach the server to free its limit slots.
	_, err = r.c.exchange(context.Background(), wire.TRowsClose, payload, wire.TOK)
	return err
}
