package eval

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

var (
	partT    = schema.StringType()
	infrontT = schema.RelationType{Name: "infrontrel",
		Element: schema.RecordType{Attrs: []schema.Attribute{
			{Name: "front", Type: partT}, {Name: "back", Type: partT}}}}
	objT = schema.RelationType{Name: "objectrel",
		Element: schema.RecordType{Attrs: []schema.Attribute{
			{Name: "part", Type: partT}}}, Key: []string{"part"}}
)

func env(t *testing.T) *Env {
	t.Helper()
	e := NewEnv()
	e.RelTypes["infrontrel"] = infrontT
	e.Rels["Infront"] = relation.MustFromTuples(infrontT,
		value.NewTuple(value.Str("vase"), value.Str("table")),
		value.NewTuple(value.Str("table"), value.Str("chair")),
		value.NewTuple(value.Str("chair"), value.Str("door")),
	)
	e.Rels["Objects"] = relation.MustFromTuples(objT,
		value.NewTuple(value.Str("vase")),
		value.NewTuple(value.Str("table")),
		value.NewTuple(value.Str("chair")),
	)
	return e
}

func evalSet(t *testing.T, e *Env, src string) *relation.Relation {
	t.Helper()
	s, err := parser.ParseSetExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	out, err := e.SetExpr(s, nil)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return out
}

func TestSelection(t *testing.T) {
	got := evalSet(t, env(t), `{EACH r IN Infront: r.front = "table"}`)
	if got.Len() != 1 || !got.Contains(value.NewTuple(value.Str("table"), value.Str("chair"))) {
		t.Errorf("selection: %s", got)
	}
}

func TestJoinWithTargetList(t *testing.T) {
	got := evalSet(t, env(t),
		`{<f.front, b.back> OF EACH f IN Infront, EACH b IN Infront: f.back = b.front}`)
	want := []value.Tuple{
		value.NewTuple(value.Str("vase"), value.Str("chair")),
		value.NewTuple(value.Str("table"), value.Str("door")),
	}
	if got.Len() != len(want) {
		t.Fatalf("join: %s", got)
	}
	for _, w := range want {
		if !got.Contains(w) {
			t.Errorf("missing %s in %s", w, got)
		}
	}
}

func TestUnionOfBranches(t *testing.T) {
	got := evalSet(t, env(t), `{EACH r IN Infront: r.front = "vase", EACH r IN Infront: r.front = "chair"}`)
	if got.Len() != 2 {
		t.Errorf("union: %s", got)
	}
}

func TestLiteralBranches(t *testing.T) {
	got := evalSet(t, env(t), `{<"a","b">, <"a","b">, <"c","d">}`)
	if got.Len() != 2 {
		t.Errorf("literal set semantics: %s", got)
	}
}

func TestQuantifiers(t *testing.T) {
	e := env(t)
	// Referential integrity shape: both ends known objects.
	got := evalSet(t, e, `{EACH r IN Infront:
		SOME a IN Objects (r.front = a.part) AND SOME b IN Objects (r.back = b.part)}`)
	// chair->door fails (door not an object).
	if got.Len() != 2 {
		t.Errorf("SOME: %s", got)
	}
	// ALL over an empty range is true.
	e.Rels["Empty"] = relation.New(objT)
	got2 := evalSet(t, e, `{EACH r IN Infront: ALL x IN Empty (x.part = "nope")}`)
	if got2.Len() != 3 {
		t.Errorf("ALL over empty: %s", got2)
	}
}

func TestMembership(t *testing.T) {
	e := env(t)
	got := evalSet(t, e, `{EACH r IN Infront: NOT (<r.back, r.front> IN Infront)}`)
	if got.Len() != 3 {
		t.Errorf("tuple membership: %s", got)
	}
	e.Rels["Copy"] = e.Rels["Infront"]
	got2 := evalSet(t, e, `{EACH r IN Infront: r IN Copy}`)
	if got2.Len() != 3 {
		t.Errorf("variable membership: %s", got2)
	}
}

func TestArithmetic(t *testing.T) {
	numT := schema.RelationType{Element: schema.RecordType{Attrs: []schema.Attribute{
		{Name: "n", Type: schema.IntType()}}}}
	e := NewEnv()
	e.Rels["Nums"] = relation.MustFromTuples(numT,
		value.NewTuple(value.Int(1)), value.NewTuple(value.Int(2)),
		value.NewTuple(value.Int(3)), value.NewTuple(value.Int(4)))
	got := evalSet(t, e, `{EACH r IN Nums: r.n MOD 2 = 0}`)
	if got.Len() != 2 {
		t.Errorf("MOD: %s", got)
	}
	got2 := evalSet(t, e, `{EACH r IN Nums: SOME s IN Nums (r.n = s.n + 1)}`)
	if got2.Len() != 3 {
		t.Errorf("s.n+1: %s", got2)
	}
	// Division by zero is a runtime error.
	s, _ := parser.ParseSetExpr(`{EACH r IN Nums: r.n DIV 0 = 1}`)
	if _, err := e.SetExpr(s, nil); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected division by zero, got %v", err)
	}
}

func TestNestedRangeExpression(t *testing.T) {
	// Range nesting of [JaKo 83]: N1's right-hand side evaluates directly.
	got := evalSet(t, env(t),
		`{EACH r IN {EACH s IN Infront: s.front = "vase"}: TRUE}`)
	if got.Len() != 1 {
		t.Errorf("nested range: %s", got)
	}
}

func TestSelectorApplication(t *testing.T) {
	e := env(t)
	m, err := parser.ParseModule(`
MODULE m;
SELECTOR hidden_by (Obj: STRING) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;
END m.
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range m.Decls {
		if sd, ok := d.(*ast.SelectorDecl); ok {
			e.Selectors[sd.Name] = sd
		}
	}
	r, err := parser.ParseRange(`Infront[hidden_by("table")]`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Range(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("selector: %s", got)
	}
	// Wrong arity is an error.
	r2, _ := parser.ParseRange(`Infront[hidden_by]`)
	if _, err := e.Range(r2); err == nil {
		t.Error("missing selector argument must fail")
	}
}

func TestErrorsSurfacePosition(t *testing.T) {
	e := env(t)
	for _, src := range []string{
		`{EACH r IN Nowhere: TRUE}`,
		`{EACH r IN Infront: r.nope = "x"}`,
		`{EACH r IN Infront: r.front = 1}`,
		`{EACH r IN Infront, EACH r IN Infront: TRUE}`,
	} {
		s, err := parser.ParseSetExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := e.SetExpr(s, nil); err == nil {
			t.Errorf("eval %q: expected error", src)
		}
	}
}

func TestTypeInference(t *testing.T) {
	e := env(t)
	s, _ := parser.ParseSetExpr(`{<f.front, b.back> OF EACH f IN Infront, EACH b IN Infront: f.back = b.front}`)
	rt, err := e.InferType(s)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Element.Arity() != 2 || rt.Element.Attrs[0].Name != "front" || rt.Element.Attrs[1].Name != "back" {
		t.Errorf("inferred %s", rt.Element)
	}
	// Incompatible branches are rejected.
	s2, _ := parser.ParseSetExpr(`{EACH r IN Infront: TRUE, EACH o IN Objects: TRUE}`)
	e.Rels["Objects2"] = e.Rels["Objects"]
	if _, err := e.InferType(s2); err == nil {
		t.Error("arity-incompatible branches must fail inference")
	}
}

func TestIndexPlanMatchesNaive(t *testing.T) {
	// The equi-join planner must not change results: compare the indexed
	// join against a full cross-product filter on a larger relation.
	e := NewEnv()
	rel := relation.New(infrontT)
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i, x := range names {
		for j, y := range names {
			if (i+j)%3 == 0 {
				rel.Add(value.NewTuple(value.Str(x), value.Str(y)))
			}
		}
	}
	e.Rels["R"] = rel
	joined := evalSet(t, e, `{<f.front, b.back> OF EACH f IN R, EACH b IN R: f.back = b.front}`)
	// Reference: nested loops in Go.
	want := relation.New(infrontT)
	rel.Each(func(f value.Tuple) bool {
		rel.Each(func(b value.Tuple) bool {
			if f[1] == b[0] {
				want.Add(value.NewTuple(f[0], b[1]))
			}
			return true
		})
		return true
	})
	if !joined.Equal(want) {
		t.Errorf("indexed join %d tuples, reference %d", joined.Len(), want.Len())
	}
}

func TestEvalWithDeclaredResultType(t *testing.T) {
	e := env(t)
	aheadT := schema.RelationType{Name: "aheadrel",
		Element: schema.RecordType{Attrs: []schema.Attribute{
			{Name: "head", Type: partT}, {Name: "tail", Type: partT}}}}
	s, _ := parser.ParseSetExpr(`{EACH r IN Infront: TRUE}`)
	got, err := e.SetExpr(s, &aheadT)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type().Element.Attrs[0].Name != "head" {
		t.Errorf("declared result type not used: %s", got.Type())
	}
}
