package core

import (
	"fmt"
	"testing"

	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/value"
	"repro/internal/workload"
)

// TestAheadNSequenceConvergesToAhead reproduces the limit equation of
// section 3.1:
//
//	Infront{ahead} = lim (n->inf) Infront{ahead_n}
//
// The ahead_n family is generated programmatically: ahead_1 copies the base
// relation, and ahead_n extends paths by one step through ahead_{n-1}. On a
// graph of diameter d, ahead_n must equal ahead for all n >= d and be a
// strict subset before that.
func TestAheadNSequenceConvergesToAhead(t *testing.T) {
	const maxN = 12
	reg := NewRegistry()
	if _, err := reg.Register(mustParseConstructor(t, aheadSrc), aheadT); err != nil {
		t.Fatal(err)
	}
	// ahead_1 .. ahead_maxN.
	for n := 1; n <= maxN; n++ {
		var src string
		if n == 1 {
			src = `
CONSTRUCTOR ahead_1 FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE END ahead_1;`
		} else {
			src = fmt.Sprintf(`
CONSTRUCTOR ahead_%d FOR Rel: infrontrel (): aheadrel;
BEGIN
  EACH r IN Rel: TRUE,
  <f.front, b.tail> OF EACH f IN Rel, EACH b IN Rel{ahead_%d}: f.back = b.head
END ahead_%d;`, n, n-1, n)
		}
		if _, err := reg.Register(mustParseConstructor(t, src), aheadT); err != nil {
			t.Fatalf("register ahead_%d: %v", n, err)
		}
	}
	en := NewEngine(reg, eval.NewEnv())

	// Chain of 8 edges: diameter 8.
	base := relation.New(infrontT)
	for _, e := range workload.Chain(8) {
		base.Add(value.NewTuple(
			value.Str(workload.NodeName(e.From)), value.Str(workload.NodeName(e.To))))
	}
	limit, err := en.Apply("ahead", base, nil)
	if err != nil {
		t.Fatal(err)
	}

	prevLen := -1
	for n := 1; n <= maxN; n++ {
		approx, err := en.Apply(fmt.Sprintf("ahead_%d", n), base, nil)
		if err != nil {
			t.Fatalf("ahead_%d: %v", n, err)
		}
		// Monotone: ahead_n ⊆ ahead_{n+1} ⊆ limit.
		if approx.Difference(limit).Len() != 0 {
			t.Fatalf("ahead_%d exceeds the limit", n)
		}
		if approx.Len() < prevLen {
			t.Fatalf("sequence not monotone at n=%d", n)
		}
		prevLen = approx.Len()
		if n < 8 && approx.Equal(limit) {
			t.Fatalf("ahead_%d already equals the limit on a diameter-8 chain", n)
		}
		if n >= 8 && !approx.Equal(limit) {
			t.Fatalf("ahead_%d (n >= diameter) must equal the limit", n)
		}
	}
}

// TestScalarParameterizedConstructor exercises scalar formal parameters:
// a reachability constructor with a fixed source object.
func TestScalarParameterizedConstructor(t *testing.T) {
	const src = `
CONSTRUCTOR reach FOR Rel: infrontrel (Src: parttype): aheadrel;
BEGIN
  EACH r IN Rel: r.front = Src,
  <rc.head, n.back> OF EACH rc IN Rel{reach(Src)}, EACH n IN Rel: rc.tail = n.front
END reach;`
	reg := NewRegistry()
	if _, err := reg.Register(mustParseConstructor(t, src), aheadT); err != nil {
		t.Fatal(err)
	}
	en := NewEngine(reg, eval.NewEnv())
	base := relation.MustFromTuples(infrontT, pairs(
		[2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"x", "y"},
	)...)
	got, err := en.Apply("reach", base, []eval.Resolved{{Scalar: value.Str("a"), IsScalar: true}})
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustFromTuples(aheadT, pairs(
		[2]string{"a", "b"}, [2]string{"a", "c"},
	)...)
	if !got.Equal(want) {
		t.Errorf("reach(a): got %s, want %s", got, want)
	}
	// A different scalar argument grounds a different instance.
	got2, err := en.Apply("reach", base, []eval.Resolved{{Scalar: value.Str("x"), IsScalar: true}})
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 1 {
		t.Errorf("reach(x): %s", got2)
	}
}

// TestSelectorInsideConstructorBody checks that selector suffixes inside a
// constructor body are applied against the formal base each evaluation.
func TestSelectorInsideConstructorBody(t *testing.T) {
	const selSrc = `
MODULE m;
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
SELECTOR not_self FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front # r.back END not_self;
END m.
`
	const consSrc = `
CONSTRUCTOR clean FOR Rel: infrontrel (): infrontrel;
BEGIN
  EACH r IN Rel[not_self]: TRUE
END clean;`
	reg := NewRegistry()
	if _, err := reg.Register(mustParseConstructor(t, consSrc), infrontT); err != nil {
		t.Fatal(err)
	}
	env := eval.NewEnv()
	addSelectors(t, env, selSrc)
	en := NewEngine(reg, env)
	base := relation.MustFromTuples(infrontT, pairs(
		[2]string{"a", "a"}, [2]string{"a", "b"},
	)...)
	got, err := en.Apply("clean", base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(value.NewTuple(value.Str("a"), value.Str("b"))) {
		t.Errorf("clean: %s", got)
	}
}
