package store

import (
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

// recObserver records every observer callback in order.
type recObserver struct {
	events []string
	nexts  []*relation.Relation
}

func (o *recObserver) CommittedGrow(name string, tuples []value.Tuple, next *relation.Relation) {
	o.events = append(o.events, fmt.Sprintf("grow %s +%d", name, len(tuples)))
	o.nexts = append(o.nexts, next)
}

func (o *recObserver) CommittedReset(name string, next *relation.Relation) {
	o.events = append(o.events, "reset "+name)
	o.nexts = append(o.nexts, next)
}

func TestObserverInsertGrow(t *testing.T) {
	db := NewDatabase()
	_ = db.Declare("R", binT)
	obs := &recObserver{}
	db.SetObserver(obs)
	if err := db.Insert("R", pair("a", "b"), pair("b", "c")); err != nil {
		t.Fatal(err)
	}
	if len(obs.events) != 1 || obs.events[0] != "grow R +2" {
		t.Fatalf("events = %v, want [grow R +2]", obs.events)
	}
	// The published pointer the observer saw is the store's current value.
	cur, _ := db.Get("R")
	if obs.nexts[0] != cur {
		t.Fatal("observer saw a different pointer than the published relation")
	}
	// An empty insert publishes nothing and must not notify.
	if err := db.Insert("R"); err != nil {
		t.Fatal(err)
	}
	if len(obs.events) != 1 {
		t.Fatalf("empty insert notified: %v", obs.events)
	}
}

func TestObserverAssignAndDeclareReset(t *testing.T) {
	db := NewDatabase()
	obs := &recObserver{}
	db.SetObserver(obs)
	_ = db.Declare("R", binT)
	if err := db.Assign("R", relation.MustFromTuples(binT, pair("a", "b"))); err != nil {
		t.Fatal(err)
	}
	want := []string{"reset R", "reset R"}
	if len(obs.events) != 2 || obs.events[0] != want[0] || obs.events[1] != want[1] {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
}

func TestObserverTxInsertOnlyIsGrow(t *testing.T) {
	db := NewDatabase()
	_ = db.Declare("R", binT)
	_ = db.Insert("R", pair("a", "b"))
	obs := &recObserver{}
	db.SetObserver(obs)

	tx := db.Begin()
	if err := tx.Insert("R", pair("b", "c")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("R", pair("c", "d")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(obs.events) != 1 || obs.events[0] != "grow R +2" {
		t.Fatalf("events = %v, want [grow R +2]", obs.events)
	}
}

func TestObserverTxOverwriteIsReset(t *testing.T) {
	db := NewDatabase()
	_ = db.Declare("R", binT)
	_ = db.Insert("R", pair("a", "b"))
	obs := &recObserver{}
	db.SetObserver(obs)

	// Assign inside the transaction: even with a later insert, the commit is
	// a reset — the write is not expressible as a pure growth delta.
	tx := db.Begin()
	if err := tx.Assign("R", relation.MustFromTuples(binT, pair("x", "y"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("R", pair("y", "z")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(obs.events) != 1 || obs.events[0] != "reset R" {
		t.Fatalf("events = %v, want [reset R]", obs.events)
	}
}

func TestObserverTxInsertOverStaleBaseIsReset(t *testing.T) {
	db := NewDatabase()
	_ = db.Declare("R", binT)
	obs := &recObserver{}
	db.SetObserver(obs)

	// A concurrent writer moves R between Begin and Commit: the transaction's
	// inserts were validated against a superseded base, so the commit must
	// surface as a reset, not a growth delta over the current value.
	tx := db.Begin()
	if err := tx.Insert("R", pair("b", "c")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", pair("a", "b")); err != nil {
		t.Fatal(err)
	}
	obs.events = nil
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(obs.events) != 1 || obs.events[0] != "reset R" {
		t.Fatalf("events = %v, want [reset R]", obs.events)
	}
}

func TestNameOf(t *testing.T) {
	db := NewDatabase()
	_ = db.Declare("R", binT)
	_ = db.Declare("S", binT)
	_ = db.Insert("R", pair("a", "b"))
	cur, _ := db.Get("R")
	if name, ok := db.NameOf(cur); !ok || name != "R" {
		t.Fatalf("NameOf(current R) = %q, %v", name, ok)
	}
	// A stale pointer (pre-mutation value) is no longer any variable's value.
	if err := db.Insert("R", pair("b", "c")); err != nil {
		t.Fatal(err)
	}
	if name, ok := db.NameOf(cur); ok {
		t.Fatalf("NameOf(stale pointer) = %q, want miss", name)
	}
	if _, ok := db.NameOf(relation.New(binT)); ok {
		t.Fatal("NameOf(foreign relation) should miss")
	}
}

func TestReadLockedSeesPublishedState(t *testing.T) {
	db := NewDatabase()
	_ = db.Declare("R", binT)
	_ = db.Insert("R", pair("a", "b"))
	cur, _ := db.Get("R")
	called := false
	db.ReadLocked(func(get func(string) (*relation.Relation, bool)) {
		called = true
		if r, ok := get("R"); !ok || r != cur {
			t.Error("ReadLocked get does not see the published pointer")
		}
		if _, ok := get("nope"); ok {
			t.Error("ReadLocked get invented a variable")
		}
	})
	if !called {
		t.Fatal("ReadLocked never invoked the callback")
	}
}
