// Package eval implements the set-oriented evaluator for DBPL relational
// calculus expressions — the "set-construction framework of database systems"
// that the paper contrasts with proof-oriented, tuple-at-a-time methods
// (sections 1 and 4).
//
// A set expression {branch, branch, ...} evaluates to the union of its
// branches. Each branch binds tuple variables to materialized ranges, applies
// its predicate, and projects through the target list. The evaluator performs
// simple physical planning: top-level conjuncts of the predicate that equate
// an attribute of a later binding with constants or attributes of earlier
// bindings become hash-index probes (the equi-join of f.back = b.head in the
// ahead constructor), and every other conjunct is evaluated at the earliest
// binding position where its free variables are bound.
package eval

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Resolved is an evaluated actual argument to a selector or constructor.
type Resolved struct {
	Rel      *relation.Relation
	Scalar   value.Value
	IsScalar bool
}

// ConstructorResolver resolves a constructor application Rel{c(args)} to its
// constructed value. Package core supplies the least-fixpoint implementation;
// the indirection keeps eval free of a dependency cycle. The context carries
// cancellation into the fixpoint iteration.
type ConstructorResolver interface {
	ApplyConstructor(ctx context.Context, name string, base *relation.Relation, args []Resolved) (*relation.Relation, error)
}

// PathProvider resolves physical access paths: given a published (immutable)
// base relation and an attribute position, it returns the sub-relation whose
// attribute at that position equals v. Package store supplies the lazily
// built, copy-on-write-invalidated implementation; ok is false when the
// provider declines (e.g. the relation is not a published store value), in
// which case the caller falls back to a scan.
type PathProvider interface {
	Partition(base *relation.Relation, pos int, v value.Value) (*relation.Relation, bool)
}

// PathStats counts access-path decisions during one evaluation, surfaced by
// EXPLAIN ANALYZE. The counters are atomic because executor workers may apply
// selectors concurrently while sharing one PathStats through cloned
// environments.
type PathStats struct {
	// PartitionLookups counts selector applications answered from a hash
	// partition instead of a full scan.
	PartitionLookups atomic.Int64
	// Scans counts selector applications that fell back to scanning the base
	// relation.
	Scans atomic.Int64
}

// Env is the evaluation environment: relation variables (including formal
// base-relation and relation-parameter names during constructor evaluation),
// scalar parameters, named relation types, selector declarations, and the
// constructor resolver.
type Env struct {
	Rels         map[string]*relation.Relation
	Scalars      map[string]value.Value
	RelTypes     map[string]schema.RelationType
	Selectors    map[string]*ast.SelectorDecl
	Constructors ConstructorResolver

	// Paths, when non-nil, serves hash-partition lookups for selector
	// applications whose body is an indexable equality (SelectorPartitionAttr).
	// A nil Paths means every selector application scans its base.
	Paths PathProvider
	// PathStats, when non-nil, receives access-path counters.
	PathStats *PathStats

	// Ctx, when non-nil, cancels long evaluations: the branch loops check it
	// periodically and constructor applications thread it into the fixpoint
	// iteration. A nil Ctx means "never cancelled".
	Ctx context.Context

	// Parallelism is the executor's worker budget for partitioned pipelines
	// (outer-relation partitioning of joins, selector filters, and index
	// builds). 0 or 1 runs everything on the calling goroutine.
	Parallelism int
	// ParallelMinRows is the outer-cardinality threshold below which a
	// pipeline stays serial; 0 means DefaultParallelMinRows.
	ParallelMinRows int
	// ExecStats, when non-nil, receives per-operator executor counters,
	// surfaced by EXPLAIN ANALYZE.
	ExecStats *ExecStats

	// rangeMemo caches materialized ranges within one evaluation so that
	// quantifier ranges inside loops are not re-materialized per tuple.
	rangeMemo map[*ast.Range]*relation.Relation
	// steps counts tuple visits, so cancellation is polled only every few
	// hundred tuples instead of per tuple.
	steps uint
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{
		Rels:      make(map[string]*relation.Relation),
		Scalars:   make(map[string]value.Value),
		RelTypes:  make(map[string]schema.RelationType),
		Selectors: make(map[string]*ast.SelectorDecl),
	}
}

// Clone returns a shallow copy sharing definitions but with an independent
// relation binding map, for scoped re-binding.
func (e *Env) Clone() *Env {
	c := &Env{
		Rels:            make(map[string]*relation.Relation, len(e.Rels)),
		Scalars:         make(map[string]value.Value, len(e.Scalars)),
		RelTypes:        e.RelTypes,
		Selectors:       e.Selectors,
		Constructors:    e.Constructors,
		Paths:           e.Paths,
		PathStats:       e.PathStats,
		Ctx:             e.Ctx,
		Parallelism:     e.Parallelism,
		ParallelMinRows: e.ParallelMinRows,
		ExecStats:       e.ExecStats,
	}
	for k, v := range e.Rels {
		c.Rels[k] = v
	}
	for k, v := range e.Scalars {
		c.Scalars[k] = v
	}
	return c
}

// bindings tracks tuple-variable bindings during branch evaluation.
type bindings struct {
	vars  []string
	tups  []value.Tuple
	types []schema.RecordType
}

func (b *bindings) lookup(v string) (value.Tuple, schema.RecordType, bool) {
	for i := len(b.vars) - 1; i >= 0; i-- {
		if b.vars[i] == v {
			return b.tups[i], b.types[i], true
		}
	}
	return nil, schema.RecordType{}, false
}

func (b *bindings) push(v string, t value.Tuple, rt schema.RecordType) {
	b.vars = append(b.vars, v)
	b.tups = append(b.tups, t)
	b.types = append(b.types, rt)
}

func (b *bindings) pop() {
	b.vars = b.vars[:len(b.vars)-1]
	b.tups = b.tups[:len(b.tups)-1]
	b.types = b.types[:len(b.types)-1]
}

// ---------------------------------------------------------------------------
// Range materialization
// ---------------------------------------------------------------------------

// Range materializes a range expression: the base relation with every
// selector/constructor suffix applied left to right.
func (e *Env) Range(r *ast.Range) (*relation.Relation, error) {
	if e.rangeMemo == nil {
		e.rangeMemo = make(map[*ast.Range]*relation.Relation)
	}
	if cached, ok := e.rangeMemo[r]; ok {
		return cached, nil
	}
	var cur *relation.Relation
	var err error
	switch {
	case r.Sub != nil:
		cur, err = e.SetExpr(r.Sub, nil)
		if err != nil {
			return nil, err
		}
	default:
		var ok bool
		cur, ok = e.Rels[r.Var]
		if !ok {
			return nil, fmt.Errorf("%s: unknown relation %q", r.Pos, r.Var)
		}
	}
	for i := range r.Suffixes {
		cur, err = e.applySuffix(cur, &r.Suffixes[i])
		if err != nil {
			return nil, err
		}
	}
	e.rangeMemo[r] = cur
	return cur, nil
}

func (e *Env) applySuffix(base *relation.Relation, s *ast.Suffix) (*relation.Relation, error) {
	switch s.Kind {
	case ast.SuffixSelector:
		return e.applySelector(base, s)
	default:
		if e.Constructors == nil {
			return nil, fmt.Errorf("%s: constructor %q applied but no constructor resolver installed", s.Pos, s.Name)
		}
		args, err := e.ResolveArgs(s.Args)
		if err != nil {
			return nil, err
		}
		return e.Constructors.ApplyConstructor(e.Context(), s.Name, base, args)
	}
}

// Context returns the environment's cancellation context, never nil.
func (e *Env) Context() context.Context {
	if e.Ctx == nil {
		return context.Background()
	}
	return e.Ctx
}

// cancelled polls Ctx every 256 tuple visits; the coarse stride keeps the
// check off the hot path.
func (e *Env) cancelled() error {
	if e.Ctx == nil {
		return nil
	}
	e.steps++
	if e.steps&255 != 0 {
		return nil
	}
	return e.Ctx.Err()
}

// ResetMemo clears the materialized-range cache. Callers that re-bind
// relation variables between evaluations over the same AST (the fixpoint
// engine re-binding recursive occurrences each round) must reset the memo.
func (e *Env) ResetMemo() { e.rangeMemo = nil }

// ResolveArgs evaluates actual arguments. A bare-identifier "relation"
// argument that names a bound scalar parameter is reinterpreted as a scalar
// (the parser cannot distinguish the two).
func (e *Env) ResolveArgs(args []ast.Arg) ([]Resolved, error) {
	out := make([]Resolved, len(args))
	for i, a := range args {
		switch {
		case a.Scalar != nil:
			v, err := e.Term(a.Scalar, nil)
			if err != nil {
				return nil, err
			}
			out[i] = Resolved{Scalar: v, IsScalar: true}
		case a.Rel != nil:
			if a.Rel.Sub == nil && len(a.Rel.Suffixes) == 0 {
				if v, ok := e.Scalars[a.Rel.Var]; ok {
					out[i] = Resolved{Scalar: v, IsScalar: true}
					continue
				}
			}
			rel, err := e.Range(a.Rel)
			if err != nil {
				return nil, err
			}
			out[i] = Resolved{Rel: rel}
		default:
			return nil, fmt.Errorf("empty argument")
		}
	}
	return out, nil
}

// SelectorPartitionAttr inspects a selector body for the pattern
//
//	EACH r IN Rel: r.attr = Param
//
// (possibly as one conjunct of a conjunction) and returns the attribute a
// physical access path can partition on. ok is false when the body does not
// expose an indexable equality on the selector's single scalar parameter.
func SelectorPartitionAttr(decl *ast.SelectorDecl) (attr string, ok bool) {
	if len(decl.Params) != 1 {
		return "", false
	}
	param := decl.Params[0].Name
	var found string
	var scan func(p ast.Pred)
	scan = func(p ast.Pred) {
		switch q := p.(type) {
		case ast.And:
			scan(q.L)
			scan(q.R)
		case ast.Cmp:
			if q.Op != ast.OpEq {
				return
			}
			if f, okF := q.L.(ast.Field); okF {
				if pr, okP := q.R.(ast.Param); okP && pr.Name == param && f.Var == decl.BodyVar {
					found = f.Attr
				}
			}
			if f, okF := q.R.(ast.Field); okF {
				if pr, okP := q.L.(ast.Param); okP && pr.Name == param && f.Var == decl.BodyVar {
					found = f.Attr
				}
			}
		}
	}
	scan(decl.Where)
	return found, found != ""
}

// ApplySuffixes applies a chain of selector/constructor suffixes to an
// already materialized base relation. It is the tail of Range, exposed for
// execution paths that substitute the head of the chain (the magic-sets
// restricted evaluation of a recursive constructor application).
func (e *Env) ApplySuffixes(base *relation.Relation, sufs []ast.Suffix) (*relation.Relation, error) {
	cur := base
	var err error
	for i := range sufs {
		cur, err = e.applySuffix(cur, &sufs[i])
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// applySelector filters the base relation through a selector declaration —
// the paper's Rel[sel(args)] (section 2.3, Fig 1).
func (e *Env) applySelector(base *relation.Relation, s *ast.Suffix) (*relation.Relation, error) {
	decl, ok := e.Selectors[s.Name]
	if !ok {
		return nil, fmt.Errorf("%s: unknown selector %q", s.Pos, s.Name)
	}
	if len(s.Args) != len(decl.Params) {
		return nil, fmt.Errorf("%s: selector %q expects %d argument(s), got %d",
			s.Pos, s.Name, len(decl.Params), len(s.Args))
	}
	args, err := e.ResolveArgs(s.Args)
	if err != nil {
		return nil, err
	}
	// Scoped environment: formal scalar params bound to actuals, formal
	// relation params bound to actuals, and the For-variable to the base.
	scoped := e.Clone()
	for i, p := range decl.Params {
		if args[i].IsScalar {
			scoped.Scalars[p.Name] = args[i].Scalar
		} else {
			scoped.Rels[p.Name] = args[i].Rel
		}
	}
	scoped.Rels[decl.ForVar] = base

	out := relation.New(base.Type())
	// The selector body reads attributes through its declared For-type;
	// bases of positionally compatible types (e.g. applying an infrontrel
	// selector to a constructed aheadrel) are re-labelled accordingly.
	elem := base.Type().Element
	if nt, ok := decl.ForType.(ast.NamedType); ok {
		if rt, ok2 := e.RelTypes[nt.Name]; ok2 && rt.Element.Arity() == elem.Arity() {
			elem = rt.Element
		}
	}
	// Physical access path: when the selector body pivots on an indexable
	// equality and the argument is a scalar, the candidate set shrinks from
	// the whole base to the hash partition for the argument value. The full
	// predicate is still evaluated over the partition, so residual conjuncts
	// beyond the partition equality keep their semantics.
	iterBase := base
	if e.Paths != nil && len(decl.Params) == 1 && args[0].IsScalar {
		if attr, okAttr := SelectorPartitionAttr(decl); okAttr {
			if pos := elem.IndexOf(attr); pos >= 0 {
				if part, okPart := e.Paths.Partition(base, pos, args[0].Scalar); okPart {
					iterBase = part
					if e.PathStats != nil {
						e.PathStats.PartitionLookups.Add(1)
					}
				}
			}
		}
	}
	if iterBase == base && e.PathStats != nil {
		e.PathStats.Scans.Add(1)
	}
	err = scoped.filterRelationInto(iterBase, out, "select["+s.Name+"]",
		func(env *Env) func(value.Tuple) (bool, error) {
			var b bindings
			return func(t value.Tuple) (bool, error) {
				b.push(decl.BodyVar, t, elem)
				keep, err := env.Pred(decl.Where, &b)
				b.pop()
				return keep, err
			}
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Set expression evaluation
// ---------------------------------------------------------------------------

// SetExpr evaluates a set expression. If resultType is nil, the result type
// is inferred from the first branch (section 3.1's positional typing).
func (e *Env) SetExpr(s *ast.SetExpr, resultType *schema.RelationType) (*relation.Relation, error) {
	var rt schema.RelationType
	if resultType != nil {
		rt = *resultType
	} else {
		inferred, err := e.InferType(s)
		if err != nil {
			return nil, err
		}
		rt = inferred
	}
	out := relation.New(rt)
	for i := range s.Branches {
		if err := e.branchInto(&s.Branches[i], out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EvalBranchInto evaluates a single branch, adding result tuples to out.
// Exposed for the semi-naive fixpoint engine, which evaluates branches
// individually against delta relations.
func (e *Env) EvalBranchInto(br *ast.Branch, out *relation.Relation) error {
	return e.branchIntoExcluding(br, out, nil)
}

// EvalBranchIntoExcluding is EvalBranchInto, except that result tuples already
// present in except are dropped on the executor workers, before the
// single-threaded merge into out. The semi-naive engine passes its accumulated
// state here so each round's merge cost is proportional to the true delta.
func (e *Env) EvalBranchIntoExcluding(br *ast.Branch, out, except *relation.Relation) error {
	return e.branchIntoExcluding(br, out, except)
}

func (e *Env) branchInto(br *ast.Branch, out *relation.Relation) error {
	return e.branchIntoExcluding(br, out, nil)
}

func (e *Env) branchIntoExcluding(br *ast.Branch, out, except *relation.Relation) error {
	if br.Literal != nil {
		tup := make(value.Tuple, len(br.Literal))
		for i, tm := range br.Literal {
			v, err := e.Term(tm, nil)
			if err != nil {
				return err
			}
			tup[i] = v
		}
		if len(tup) != out.Type().Element.Arity() {
			return fmt.Errorf("%s: literal tuple arity %d does not match result arity %d",
				br.Pos, len(tup), out.Type().Element.Arity())
		}
		return out.Insert(tup)
	}

	// Materialize all ranges up front.
	rels := make([]*relation.Relation, len(br.Binds))
	for i, bd := range br.Binds {
		r, err := e.Range(bd.Range)
		if err != nil {
			return err
		}
		rels[i] = r
	}

	br, rels = reorderBinds(br, rels)

	plan, err := e.planBranch(br, rels)
	if err != nil {
		return err
	}

	return e.runBranchPipeline(br, plan, rels, out, except)
}

// reorderBinds moves the binding with the smallest materialized range to the
// front when it is substantially smaller than the current outer. Ranges are
// materialized before the join loop runs, so they cannot reference sibling
// binding variables and any binding order computes the same branch result;
// driving the join from the small side matters most when the semi-naive
// engine differentiates a branch — the delta-bound occurrence becomes the
// outer scan and the large, unchanged relations become (memoized) index build
// sides, making a round's cost proportional to the delta. The 8x threshold
// keeps comparable-size joins in declaration order, where plans and operator
// stats are predictable.
func reorderBinds(br *ast.Branch, rels []*relation.Relation) (*ast.Branch, []*relation.Relation) {
	if len(rels) < 2 {
		return br, rels
	}
	smallest := 0
	for i := 1; i < len(rels); i++ {
		if rels[i].Len() < rels[smallest].Len() {
			smallest = i
		}
	}
	if smallest == 0 || rels[smallest].Len()*8 >= rels[0].Len() {
		return br, rels
	}
	nb := *br
	nb.Binds = make([]ast.Binding, 0, len(br.Binds))
	nr := make([]*relation.Relation, 0, len(rels))
	nb.Binds = append(nb.Binds, br.Binds[smallest])
	nr = append(nr, rels[smallest])
	for i := range br.Binds {
		if i != smallest {
			nb.Binds = append(nb.Binds, br.Binds[i])
			nr = append(nr, rels[i])
		}
	}
	return &nb, nr
}

// branchPlan holds per-binding probe and residual scheduling decisions.
type branchPlan struct {
	// probeFields[i] lists attributes of binding i used as the index key;
	// probeTerms[i] lists the matching terms over earlier bindings.
	probeFields [][]ast.Field
	probeTerms  [][]ast.Term
	indexes     []*relation.Index
	// residuals[i] are the conjuncts evaluated once bindings 0..i are set.
	residuals [][]ast.Pred
}

// conjuncts flattens top-level ANDs.
func conjuncts(p ast.Pred, out []ast.Pred) []ast.Pred {
	if a, ok := p.(ast.And); ok {
		out = conjuncts(a.L, out)
		return conjuncts(a.R, out)
	}
	return append(out, p)
}

// freePredVars collects tuple variables free in p (quantifier-bound vars are
// excluded) into the set.
func freePredVars(p ast.Pred, bound map[string]bool, out map[string]bool) {
	switch q := p.(type) {
	case ast.BoolLit:
	case ast.Cmp:
		freeTermVars(q.L, out)
		freeTermVars(q.R, out)
	case ast.And:
		freePredVars(q.L, bound, out)
		freePredVars(q.R, bound, out)
	case ast.Or:
		freePredVars(q.L, bound, out)
		freePredVars(q.R, bound, out)
	case ast.Not:
		freePredVars(q.P, bound, out)
	case ast.Quant:
		inner := map[string]bool{q.Var: true}
		for k := range bound {
			inner[k] = true
		}
		var tmp map[string]bool = make(map[string]bool)
		freePredVars(q.Body, inner, tmp)
		for k := range tmp {
			if !inner[k] || bound[k] {
				out[k] = true
			}
		}
		delete(out, q.Var)
	case ast.Member:
		if q.VarTuple != "" {
			out[q.VarTuple] = true
		}
		for _, t := range q.Terms {
			freeTermVars(t, out)
		}
	}
}

func freeTermVars(t ast.Term, out map[string]bool) {
	switch u := t.(type) {
	case ast.Field:
		out[u.Var] = true
	case ast.Arith:
		freeTermVars(u.L, out)
		freeTermVars(u.R, out)
	}
}

// FreeVarsOfPred returns the free tuple variables of p; exported for the
// optimizer and quant-graph builder.
func FreeVarsOfPred(p ast.Pred) map[string]bool {
	out := make(map[string]bool)
	freePredVars(p, nil, out)
	return out
}

func (e *Env) planBranch(br *ast.Branch, rels []*relation.Relation) (*branchPlan, error) {
	n := len(br.Binds)
	plan := &branchPlan{
		probeFields: make([][]ast.Field, n),
		probeTerms:  make([][]ast.Term, n),
		indexes:     make([]*relation.Index, n),
		residuals:   make([][]ast.Pred, n),
	}
	if n == 0 {
		return nil, fmt.Errorf("%s: branch has no bindings", br.Pos)
	}
	varPos := make(map[string]int, n)
	for i, bd := range br.Binds {
		if _, dup := varPos[bd.Var]; dup {
			return nil, fmt.Errorf("%s: duplicate tuple variable %q", bd.Pos, bd.Var)
		}
		varPos[bd.Var] = i
	}

	cs := conjuncts(br.Where, nil)
	for _, c := range cs {
		placed := false
		// An equality conjunct v.attr = term (or term = v.attr) where term's
		// vars all bind earlier than v becomes an index probe on v's range.
		if cmp, ok := c.(ast.Cmp); ok && cmp.Op == ast.OpEq {
			if tryProbe(plan, varPos, cmp.L, cmp.R) || tryProbe(plan, varPos, cmp.R, cmp.L) {
				placed = true
			}
		}
		if placed {
			continue
		}
		// Residual: schedule at the latest-binding free variable.
		fv := FreeVarsOfPred(c)
		at := 0
		for v := range fv {
			i, ok := varPos[v]
			if !ok {
				// Variable bound outside this branch (nested contexts) —
				// schedule innermost to be safe.
				i = n - 1
			}
			if i > at {
				at = i
			}
		}
		plan.residuals[at] = append(plan.residuals[at], c)
	}

	// Resolve probe attribute positions and build indexes.
	for i := range br.Binds {
		if len(plan.probeFields[i]) == 0 {
			continue
		}
		elem := rels[i].Type().Element
		positions := make([]int, 0, len(plan.probeFields[i]))
		okFields := plan.probeFields[i][:0]
		okTerms := plan.probeTerms[i][:0]
		for k, f := range plan.probeFields[i] {
			pos := elem.IndexOf(f.Attr)
			if pos < 0 {
				// Attribute does not exist at runtime type: demote the
				// conjunct to a residual so the usual error surfaces.
				plan.residuals[i] = append(plan.residuals[i],
					ast.Cmp{Op: ast.OpEq, L: f, R: plan.probeTerms[i][k]})
				continue
			}
			positions = append(positions, pos)
			okFields = append(okFields, f)
			okTerms = append(okTerms, plan.probeTerms[i][k])
		}
		plan.probeFields[i] = okFields
		plan.probeTerms[i] = okTerms
		if len(positions) > 0 {
			plan.indexes[i] = rels[i].IndexOn(positions, e.buildWorkers())
		}
	}
	return plan, nil
}

// tryProbe attempts to register lhs (a Field of some binding i) probed by rhs
// (terms over strictly earlier bindings, params, and constants).
func tryProbe(plan *branchPlan, varPos map[string]int, lhs, rhs ast.Term) bool {
	f, ok := lhs.(ast.Field)
	if !ok {
		return false
	}
	i, ok := varPos[f.Var]
	if !ok {
		return false
	}
	fv := make(map[string]bool)
	freeTermVars(rhs, fv)
	for v := range fv {
		j, ok := varPos[v]
		if !ok || j >= i {
			return false
		}
	}
	plan.probeTerms[i] = append(plan.probeTerms[i], rhs)
	plan.probeFields[i] = append(plan.probeFields[i], f)
	return true
}

// ---------------------------------------------------------------------------
// Predicates and terms
// ---------------------------------------------------------------------------

// EvalPredWithTuple evaluates a predicate with a single tuple variable bound
// — the evaluation shape of selector guards on assignment (section 2.3).
func (e *Env) EvalPredWithTuple(p ast.Pred, varName string, elem schema.RecordType, t value.Tuple) (bool, error) {
	var b bindings
	b.push(varName, t, elem)
	return e.Pred(p, &b)
}

// Pred evaluates a predicate under the current bindings.
func (e *Env) Pred(p ast.Pred, b *bindings) (bool, error) {
	switch q := p.(type) {
	case ast.BoolLit:
		return q.Val, nil
	case ast.Cmp:
		l, err := e.Term(q.L, b)
		if err != nil {
			return false, err
		}
		r, err := e.Term(q.R, b)
		if err != nil {
			return false, err
		}
		if l.Kind() != r.Kind() {
			return false, fmt.Errorf("comparison %s between %s and %s values",
				q.Op, l.Kind(), r.Kind())
		}
		c := l.Compare(r)
		switch q.Op {
		case ast.OpEq:
			return c == 0, nil
		case ast.OpNe:
			return c != 0, nil
		case ast.OpLt:
			return c < 0, nil
		case ast.OpLe:
			return c <= 0, nil
		case ast.OpGt:
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	case ast.And:
		l, err := e.Pred(q.L, b)
		if err != nil || !l {
			return false, err
		}
		return e.Pred(q.R, b)
	case ast.Or:
		l, err := e.Pred(q.L, b)
		if err != nil || l {
			return l, err
		}
		return e.Pred(q.R, b)
	case ast.Not:
		inner, err := e.Pred(q.P, b)
		return !inner, err
	case ast.Quant:
		rel, err := e.Range(q.Range)
		if err != nil {
			return false, err
		}
		elem := rel.Type().Element
		result := q.All // ALL over empty range is true; SOME is false
		var iterErr error
		rel.Each(func(t value.Tuple) bool {
			if err := e.cancelled(); err != nil {
				iterErr = err
				return false
			}
			b.push(q.Var, t, elem)
			ok, err := e.Pred(q.Body, b)
			b.pop()
			if err != nil {
				iterErr = err
				return false
			}
			if q.All && !ok {
				result = false
				return false
			}
			if !q.All && ok {
				result = true
				return false
			}
			return true
		})
		return result, iterErr
	case ast.Member:
		rel, err := e.Range(q.Range)
		if err != nil {
			return false, err
		}
		var tup value.Tuple
		if q.VarTuple != "" {
			t, _, ok := b.lookup(q.VarTuple)
			if !ok {
				return false, fmt.Errorf("%s: unbound tuple variable %q in membership", q.Pos, q.VarTuple)
			}
			tup = t
		} else {
			tup = make(value.Tuple, len(q.Terms))
			for i, tm := range q.Terms {
				v, err := e.Term(tm, b)
				if err != nil {
					return false, err
				}
				tup[i] = v
			}
		}
		return rel.Contains(tup), nil
	default:
		return false, fmt.Errorf("eval: unknown predicate %T", p)
	}
}

// Term evaluates a scalar term under the current bindings; b may be nil for
// closed terms.
func (e *Env) Term(t ast.Term, b *bindings) (value.Value, error) {
	switch u := t.(type) {
	case ast.Const:
		return u.Val, nil
	case ast.Param:
		if v, ok := e.Scalars[u.Name]; ok {
			return v, nil
		}
		return value.Value{}, fmt.Errorf("%s: unbound scalar parameter %q", u.Pos, u.Name)
	case ast.Field:
		if b == nil {
			return value.Value{}, fmt.Errorf("%s: attribute access %s outside tuple scope", u.Pos, u)
		}
		tup, rt, ok := b.lookup(u.Var)
		if !ok {
			return value.Value{}, fmt.Errorf("%s: unbound tuple variable %q", u.Pos, u.Var)
		}
		idx := rt.IndexOf(u.Attr)
		if idx < 0 {
			return value.Value{}, fmt.Errorf("%s: tuple variable %q has no attribute %q (type %s)",
				u.Pos, u.Var, u.Attr, rt)
		}
		return tup[idx], nil
	case ast.Arith:
		l, err := e.Term(u.L, b)
		if err != nil {
			return value.Value{}, err
		}
		r, err := e.Term(u.R, b)
		if err != nil {
			return value.Value{}, err
		}
		if l.Kind() != value.KindInt || r.Kind() != value.KindInt {
			return value.Value{}, fmt.Errorf("arithmetic %s on non-integer operands", u.Op)
		}
		a, c := l.AsInt(), r.AsInt()
		switch u.Op {
		case ast.OpAdd:
			return value.Int(a + c), nil
		case ast.OpSub:
			return value.Int(a - c), nil
		case ast.OpMul:
			return value.Int(a * c), nil
		case ast.OpDiv:
			if c == 0 {
				return value.Value{}, fmt.Errorf("division by zero")
			}
			return value.Int(a / c), nil
		default:
			if c == 0 {
				return value.Value{}, fmt.Errorf("MOD by zero")
			}
			return value.Int(a % c), nil
		}
	default:
		return value.Value{}, fmt.Errorf("eval: unknown term %T", t)
	}
}
