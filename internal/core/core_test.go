package core

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/fixpoint"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Shared schema for the paper's CAD example.
var (
	partT      = schema.StringType()
	infrontT   = schema.NewRelationType("infrontrel", schema.NewRecordType("", schema.Attribute{Name: "front", Type: partT}, schema.Attribute{Name: "back", Type: partT}))
	aheadT     = schema.NewRelationType("aheadrel", schema.NewRecordType("", schema.Attribute{Name: "head", Type: partT}, schema.Attribute{Name: "tail", Type: partT}))
	ontopT     = schema.NewRelationType("ontoprel", schema.NewRecordType("", schema.Attribute{Name: "top", Type: partT}, schema.Attribute{Name: "base", Type: partT}))
	aboveT     = schema.NewRelationType("aboverel", schema.NewRecordType("", schema.Attribute{Name: "high", Type: partT}, schema.Attribute{Name: "low", Type: partT}))
	cardrelT   = schema.NewRelationType("cardrel", schema.NewRecordType("", schema.Attribute{Name: "number", Type: schema.CardinalType()}))
	anyRelType = infrontT
)

func mustParseConstructor(t *testing.T, src string) *ast.ConstructorDecl {
	t.Helper()
	m, err := parser.ParseModule("MODULE m;\n" + src + "\nEND m.")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range m.Decls {
		if cd, ok := d.(*ast.ConstructorDecl); ok {
			return cd
		}
	}
	t.Fatalf("no constructor in %q", src)
	return nil
}

func mustParseModule(t *testing.T, src string) *ast.Module {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// addSelectors registers every selector declared in src into the env.
func addSelectors(t *testing.T, env *eval.Env, src string) {
	t.Helper()
	m := mustParseModule(t, src)
	for _, d := range m.Decls {
		if sd, ok := d.(*ast.SelectorDecl); ok {
			env.Selectors[sd.Name] = sd
		}
	}
}

const aheadSrc = `
CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN
  EACH r IN Rel: TRUE,
  <f.front, b.tail> OF EACH f IN Rel, EACH b IN Rel{ahead}: f.back = b.head
END ahead;`

func pairs(ps ...[2]string) []value.Tuple {
	out := make([]value.Tuple, len(ps))
	for i, p := range ps {
		out[i] = value.NewTuple(value.Str(p[0]), value.Str(p[1]))
	}
	return out
}

func newAheadEngine(t *testing.T, mode Mode) *Engine {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.Register(mustParseConstructor(t, aheadSrc), aheadT); err != nil {
		t.Fatalf("register: %v", err)
	}
	en := NewEngine(reg, eval.NewEnv())
	en.Mode = mode
	return en
}

func TestAheadTransitiveClosure(t *testing.T) {
	for _, mode := range []Mode{Naive, SemiNaive} {
		en := newAheadEngine(t, mode)
		infront := relation.MustFromTuples(infrontT, pairs(
			[2]string{"vase", "table"},
			[2]string{"table", "chair"},
			[2]string{"chair", "door"},
		)...)
		got, err := en.Apply("ahead", infront, nil)
		if err != nil {
			t.Fatalf("%s: apply: %v", mode, err)
		}
		want := relation.MustFromTuples(aheadT, pairs(
			[2]string{"vase", "table"}, [2]string{"table", "chair"},
			[2]string{"chair", "door"}, [2]string{"vase", "chair"},
			[2]string{"table", "door"}, [2]string{"vase", "door"},
		)...)
		if !got.Equal(want) {
			t.Errorf("%s: got %s, want %s", mode, got, want)
		}
		if en.LastStats().Instances != 1 {
			t.Errorf("%s: expected 1 instance, got %d", mode, en.LastStats().Instances)
		}
	}
}

func TestAheadOnCycle(t *testing.T) {
	// Closed-world termination on cyclic data — the case where PROLOG's
	// proof-oriented evaluation loops forever (section 3.4).
	en := newAheadEngine(t, SemiNaive)
	infront := relation.MustFromTuples(infrontT, pairs(
		[2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "a"},
	)...)
	got, err := en.Apply("ahead", infront, nil)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got.Len() != 9 { // full 3x3 closure on a cycle
		t.Errorf("cycle closure: got %d tuples, want 9: %s", got.Len(), got)
	}
}

func TestMutualRecursionAheadAbove(t *testing.T) {
	const aheadMutualSrc = `
CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
BEGIN
  EACH r IN Rel: TRUE,
  <r.front, ah.tail> OF EACH r IN Rel, EACH ah IN Rel{ahead(Ontop)}: r.back = ah.head,
  <r.front, ab.low> OF EACH r IN Rel, EACH ab IN Ontop{above(Rel)}: r.back = ab.high
END ahead;`
	const aboveSrc = `
CONSTRUCTOR above FOR Rel: ontoprel (Infront: infrontrel): aboverel;
BEGIN
  EACH r IN Rel: TRUE,
  <r.top, ab.low> OF EACH r IN Rel, EACH ab IN Rel{above(Infront)}: r.base = ab.high,
  <r.top, ah.tail> OF EACH r IN Rel, EACH ah IN Infront{ahead(Rel)}: r.base = ah.head
END above;`

	for _, mode := range []Mode{Naive, SemiNaive} {
		reg := NewRegistry()
		if _, err := reg.Register(mustParseConstructor(t, aheadMutualSrc), aheadT); err != nil {
			t.Fatalf("register ahead: %v", err)
		}
		if _, err := reg.Register(mustParseConstructor(t, aboveSrc), aboveT); err != nil {
			t.Fatalf("register above: %v", err)
		}
		en := NewEngine(reg, eval.NewEnv())
		en.Mode = mode

		// vase on table, table in front of chair => vase ahead of chair.
		infront := relation.MustFromTuples(infrontT, pairs([2]string{"table", "chair"})...)
		ontop := relation.MustFromTuples(ontopT, pairs([2]string{"vase", "table"})...)

		got, err := en.Apply("ahead", infront, []eval.Resolved{{Rel: ontop}})
		if err != nil {
			t.Fatalf("%s: apply: %v", mode, err)
		}
		want := relation.MustFromTuples(aheadT, pairs(
			[2]string{"table", "chair"},
		)...)
		_ = want
		if !got.Contains(value.NewTuple(value.Str("table"), value.Str("chair"))) {
			t.Errorf("%s: missing base tuple: %s", mode, got)
		}
		// The above-relation should relate vase above chair via the
		// combined rule; ahead should contain vase ahead of chair... per
		// the paper's definition, ahead gains <r.front, ab.low> only via
		// Infront tuples whose back is some 'high'; here vase ahead of
		// chair comes from above: above(vase, table) and ahead(table,
		// chair) => above(vase, chair)? No: above's third branch gives
		// <r.top, ah.tail> for r.base = ah.head: <vase, chair>.
		above, err := en.Apply("above", ontop, []eval.Resolved{{Rel: infront}})
		if err != nil {
			t.Fatalf("%s: apply above: %v", mode, err)
		}
		if !above.Contains(value.NewTuple(value.Str("vase"), value.Str("chair"))) {
			t.Errorf("%s: above missing <vase, chair>: %s", mode, above)
		}
		if en.LastStats().Instances != 2 {
			t.Errorf("%s: expected joint system of 2 instances, got %d", mode, en.LastStats().Instances)
		}
	}
}

func TestNonsenseConstructorRejectedWhenStrict(t *testing.T) {
	const nonsenseSrc = `
CONSTRUCTOR nonsense FOR Rel: infrontrel (): infrontrel;
BEGIN
  EACH r IN Rel: NOT (r IN Rel{nonsense})
END nonsense;`
	reg := NewRegistry()
	_, err := reg.Register(mustParseConstructor(t, nonsenseSrc), infrontT)
	if err == nil {
		t.Fatal("expected strict registry to reject non-positive constructor")
	}
	if !strings.Contains(err.Error(), "positivity") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestNonsenseConstructorOscillates(t *testing.T) {
	const nonsenseSrc = `
CONSTRUCTOR nonsense FOR Rel: infrontrel (): infrontrel;
BEGIN
  EACH r IN Rel: NOT (r IN Rel{nonsense})
END nonsense;`
	reg := NewRegistry()
	reg.Strict = false
	if _, err := reg.Register(mustParseConstructor(t, nonsenseSrc), infrontT); err != nil {
		t.Fatalf("register: %v", err)
	}
	en := NewEngine(reg, eval.NewEnv())
	infront := relation.MustFromTuples(infrontT, pairs([2]string{"a", "b"})...)
	_, err := en.Apply("nonsense", infront, nil)
	if err == nil {
		t.Fatal("expected oscillation error")
	}
	var osc *fixpoint.OscillationError
	if !asErr(err, &osc) {
		t.Fatalf("expected OscillationError, got %v", err)
	}
	if osc.Period != 2 {
		t.Errorf("expected period 2 (paper's {} -> Rel -> {} alternation), got %d", osc.Period)
	}
}

func TestStrangeConstructorConverges(t *testing.T) {
	// Section 3.3: Rel = {0..6}, strange keeps r iff no s in strange with
	// r.number = s.number+1; the limit is {0,2,4,6}.
	const strangeSrc = `
CONSTRUCTOR strange FOR Baserel: cardrel (): cardrel;
BEGIN
  EACH r IN Baserel: NOT SOME s IN Baserel{strange} (r.number = s.number + 1)
END strange;`
	reg := NewRegistry()
	reg.Strict = false
	if _, err := reg.Register(mustParseConstructor(t, strangeSrc), cardrelT); err != nil {
		t.Fatalf("register: %v", err)
	}
	en := NewEngine(reg, eval.NewEnv())
	var tuples []value.Tuple
	for i := int64(0); i <= 6; i++ {
		tuples = append(tuples, value.NewTuple(value.Int(i)))
	}
	base := relation.MustFromTuples(cardrelT, tuples...)
	got, err := en.Apply("strange", base, nil)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	want := relation.MustFromTuples(cardrelT,
		value.NewTuple(value.Int(0)), value.NewTuple(value.Int(2)),
		value.NewTuple(value.Int(4)), value.NewTuple(value.Int(6)))
	if !got.Equal(want) {
		t.Errorf("strange limit: got %s, want %s", got, want)
	}
	if en.LastStats().Mode != Naive {
		t.Errorf("non-positive constructor must run naive, got %s", en.LastStats().Mode)
	}
}

func TestUnknownConstructor(t *testing.T) {
	en := newAheadEngine(t, SemiNaive)
	_, err := en.Apply("nope", relation.New(infrontT), nil)
	if err == nil || !strings.Contains(err.Error(), "unknown constructor") {
		t.Errorf("expected unknown constructor error, got %v", err)
	}
}

func TestArityMismatch(t *testing.T) {
	en := newAheadEngine(t, SemiNaive)
	_, err := en.Apply("ahead", relation.New(infrontT), []eval.Resolved{{Rel: relation.New(anyRelType)}})
	if err == nil || !strings.Contains(err.Error(), "expects 0 argument") {
		t.Errorf("expected arity error, got %v", err)
	}
}

func TestEmptyBaseRelation(t *testing.T) {
	en := newAheadEngine(t, SemiNaive)
	got, err := en.Apply("ahead", relation.New(infrontT), nil)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !got.IsEmpty() {
		t.Errorf("closure of empty relation must be empty, got %s", got)
	}
}

func TestNaiveAndSemiNaiveAgreeOnChains(t *testing.T) {
	for n := 2; n <= 20; n += 6 {
		var tuples []value.Tuple
		for i := 0; i < n; i++ {
			tuples = append(tuples, value.NewTuple(
				value.Str(nodeName(i)), value.Str(nodeName(i+1))))
		}
		infront := relation.MustFromTuples(infrontT, tuples...)

		enN := newAheadEngine(t, Naive)
		gotN, err := enN.Apply("ahead", infront, nil)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		enS := newAheadEngine(t, SemiNaive)
		gotS, err := enS.Apply("ahead", infront, nil)
		if err != nil {
			t.Fatalf("semi-naive: %v", err)
		}
		if !gotN.Equal(gotS) {
			t.Fatalf("n=%d: naive %d tuples, semi-naive %d tuples", n, gotN.Len(), gotS.Len())
		}
		wantLen := (n + 1) * n / 2 // closure of a chain of n edges
		if gotN.Len() != wantLen {
			t.Errorf("n=%d: closure size %d, want %d", n, gotN.Len(), wantLen)
		}
	}
}

func nodeName(i int) string { return "n" + string(rune('A'+i/26)) + string(rune('a'+i%26)) }

func asErr[T error](err error, target *T) bool {
	for err != nil {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
