package dbpl

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/ast"
	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/schema"
	"repro/internal/store"
)

// Tx is a snapshot transaction over the database's relation variables: reads
// see the state as of Begin plus the transaction's own writes, queries
// evaluate against that view, and Commit publishes all writes atomically
// (Rollback discards them). It is a thin wrapper over the store's overlay
// transaction; declarations are not transactional — execute modules that
// declare types, selectors, or constructors with DB.Exec before Begin.
//
// Guarded assignments (`Infront[refint] := rex`) are checked twice: at write
// time against the transaction's state then, and again at Commit against the
// transaction's final state — a later write inside the transaction may have
// invalidated a guard whose predicate references another relation, and the
// commit-time re-check keeps the paper's conditional-assignment semantics
// over the state that actually becomes visible. A failed commit check leaves
// the transaction open, so the caller can correct the offending write or
// Rollback.
//
// A Tx is not safe for concurrent use by multiple goroutines.
type Tx struct {
	db *DB
	tx *store.Tx

	mu     sync.Mutex
	done   bool
	guards map[string][]txGuard
}

// txGuard is a recorded guarded-assignment check, re-evaluated at commit
// against the transaction's final state. The arguments are kept as syntax,
// not resolved values, so the commit-time re-check resolves them (and any
// relations the guard body reads) against the state that actually becomes
// visible.
type txGuard struct {
	decl *ast.SelectorDecl
	elem schema.RecordType
	args []ast.Arg
}

// Begin starts a transaction over a stable snapshot of the relation
// variables.
func (d *DB) Begin(ctx context.Context) (*Tx, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Tx{db: d, tx: d.store().Begin(), guards: make(map[string][]txGuard)}, nil
}

// Exec runs a DBPL module's statements (SHOW and assignment, including
// guarded assignment) inside the transaction, returning the SHOW output.
// Writes land in the transaction's overlay; nothing is visible outside the
// transaction until Commit. Modules with declarations are rejected.
func (t *Tx) Exec(ctx context.Context, src string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return "", ErrTxDone
	}
	m, err := parser.ParseModule(src)
	if err != nil {
		return "", wrapErr(err)
	}
	if len(m.Decls) > 0 {
		return "", fmt.Errorf("dbpl: module %s declares inside a transaction; declarations are not transactional (execute them with DB.Exec first)", m.Name)
	}
	var out bytes.Buffer
	for i, s := range m.Stmts {
		if err := t.runStmt(ctx, s, &out); err != nil {
			return out.String(), wrapErr(fmt.Errorf("statement %d (%s): %w", i+1, s, err))
		}
	}
	return out.String(), nil
}

func (t *Tx) runStmt(ctx context.Context, s ast.Stmt, out io.Writer) error {
	env, _ := t.db.txCallEnv(ctx, t.tx)
	switch st := s.(type) {
	case *ast.Show:
		rel, err := env.Range(st.Expr)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "%s = ", st.Expr); err != nil {
			return err
		}
		if _, err := rel.WriteTo(out); err != nil {
			return err
		}
		_, err = io.WriteString(out, "\n")
		return err
	case *ast.Assign:
		rel, err := env.Range(st.Expr)
		if err != nil {
			return err
		}
		var guards []store.Guard
		var specs []txGuard
		for i := range st.Suffixes {
			suf := &st.Suffixes[i]
			if suf.Kind != ast.SuffixConstructor {
				g, spec, err := t.guardFor(env, suf)
				if err != nil {
					return err
				}
				guards = append(guards, g)
				specs = append(specs, spec)
				continue
			}
			return fmt.Errorf("assignment through a constructed relation %q is not defined (constructors derive, they do not store)", suf.Name)
		}
		if err := t.tx.Assign(st.Target, rel, guards...); err != nil {
			return err
		}
		// Assignment replaces the value wholesale, so this statement's guards
		// supersede any recorded by an earlier assignment to the same target
		// (an unguarded assignment clears them) — matching the non-transactional
		// semantics, where each assignment is checked independently.
		t.guards[st.Target] = specs
		return nil
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

// guardFor compiles one guard selector application against the transaction's
// current view and records its spec for the commit-time re-check.
func (t *Tx) guardFor(env *eval.Env, suf *ast.Suffix) (store.Guard, txGuard, error) {
	d := t.db
	d.mu.RLock()
	sig, ok := d.Checker.Selectors[suf.Name]
	d.mu.RUnlock()
	if !ok {
		return store.Guard{}, txGuard{}, fmt.Errorf("unknown selector %q", suf.Name)
	}
	args, err := env.ResolveArgs(suf.Args)
	if err != nil {
		return store.Guard{}, txGuard{}, err
	}
	g, err := compile.SelectorGuard(env, sig.Decl, sig.ForType.Element, args)
	if err != nil {
		return store.Guard{}, txGuard{}, err
	}
	return g, txGuard{decl: sig.Decl, elem: sig.ForType.Element, args: suf.Args}, nil
}

// Query evaluates a query against the transaction's view (snapshot plus own
// writes), binding args positionally like Stmt.Query.
func (t *Tx) Query(ctx context.Context, src string, args ...any) (*Relation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil, ErrTxDone
	}
	st, err := t.db.prepareCached(src)
	if err != nil {
		return nil, err
	}
	env, en := t.db.txCallEnv(ctx, t.tx)
	return st.execWith(ctx, env, en, args, nil)
}

// QueryRows is Query with a streaming row cursor over the result. The cursor
// counts against the session's WithMaxOpenRows cap until it is closed.
func (t *Tx) QueryRows(ctx context.Context, src string, args ...any) (*Rows, error) {
	release, err := t.db.acquireRows()
	if err != nil {
		return nil, err
	}
	rel, err := t.Query(ctx, src, args...)
	if err != nil {
		release()
		return nil, err
	}
	return newRows(ctx, rel, release), nil
}

// Relation returns a variable's value as seen by the transaction.
func (t *Tx) Relation(name string) (*Relation, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil, false
	}
	return t.tx.Get(name)
}

// Insert adds tuples to a variable inside the transaction, under its key
// constraint.
func (t *Tx) Insert(name string, tuples ...Tuple) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrTxDone
	}
	return wrapErr(t.tx.Insert(name, tuples...))
}

// Assign replaces a variable's value inside the transaction (key-checked).
// It is unguarded, so it supersedes any guard recorded by an earlier guarded
// assignment to the same variable.
func (t *Tx) Assign(name string, rel *Relation) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrTxDone
	}
	if err := t.tx.Assign(name, rel); err != nil {
		return wrapErr(err)
	}
	delete(t.guards, name)
	return nil
}

// Commit re-checks every recorded guard against the transaction's final
// state and publishes the writes atomically. On a guard violation the
// transaction stays open and nothing is published.
func (t *Tx) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrTxDone
	}
	if t.db.store() != t.tx.DB() {
		return fmt.Errorf("dbpl: store was replaced (LoadStore) during the transaction; nothing committed")
	}
	env, _ := t.db.txCallEnv(context.Background(), t.tx)
	for _, name := range t.tx.Writes() {
		specs := t.guards[name]
		if len(specs) == 0 {
			continue
		}
		rel, ok := t.tx.Get(name)
		if !ok {
			continue
		}
		for _, spec := range specs {
			args, err := env.ResolveArgs(spec.args)
			if err != nil {
				return wrapErr(err)
			}
			g, err := compile.SelectorGuard(env, spec.decl, spec.elem, args)
			if err != nil {
				return wrapErr(err)
			}
			var failure error
			rel.Each(func(tp Tuple) bool {
				ok, err := g.Pred(tp)
				if err != nil {
					failure = err
					return false
				}
				if !ok {
					failure = &GuardViolationError{Variable: name, Guard: g.Name, Tuple: tp}
					return false
				}
				return true
			})
			if failure != nil {
				return wrapErr(failure)
			}
		}
	}
	// The store commit write-ahead logs the batch (on a durable DB) before
	// publishing; a log failure leaves both the store and this transaction
	// open, so the caller can retry Commit or Rollback — except a poisoned
	// log (degraded read-only mode), where retrying can never succeed and
	// the error says so.
	if err := t.tx.Commit(); err != nil {
		return wrapErr(t.db.noteMutErr(err))
	}
	t.done = true
	return nil
}

// Rollback discards the transaction's writes.
func (t *Tx) Rollback() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrTxDone
	}
	t.done = true
	t.tx.Rollback()
	return nil
}
