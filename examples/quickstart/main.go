// Quickstart: the paper's running example end to end — declare the CAD
// types, define the recursive ahead constructor, load Infront facts, and
// query the constructed relation (transitive closure) through the session
// API: Open with options, context-aware execution, a prepared statement
// with a scalar parameter, and a streaming row cursor.
package main

import (
	"context"
	"fmt"
	"log"

	dbpl "repro"
)

const module = `
MODULE quickstart;

TYPE parttype   = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE aheadrel   = RELATION OF RECORD head, tail: parttype END;

VAR Infront: infrontrel;

(* Section 2.3: the predicative sub-relation view used for "behind X". *)
SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

(* Section 3.1: all object pairs separated by an arbitrary number of steps. *)
CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN
  EACH r IN Rel: TRUE,
  <f.front, b.tail> OF EACH f IN Rel, EACH b IN Rel{ahead}: f.back = b.head
END ahead;

Infront := {<"vase","table">, <"table","chair">, <"chair","door">};

SHOW Infront;
SHOW Infront{ahead};

END quickstart.
`

func main() {
	ctx := context.Background()

	// Open a session; options select the fixpoint strategy, strictness,
	// and an optional initial store (WithStoreReader).
	db, err := dbpl.Open(dbpl.WithMode(dbpl.SemiNaive))
	if err != nil {
		log.Fatalf("open: %v", err)
	}

	out, err := db.ExecContext(ctx, module)
	if err != nil {
		log.Fatalf("exec: %v", err)
	}
	fmt.Print(out)

	// Stream the closure through a row cursor: no whole-relation slice is
	// materialized on the caller's side.
	rows, err := db.QueryContext(ctx, `Infront{ahead}`)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	stats := db.LastStats()
	fmt.Printf("\nInfront{ahead} has %d tuples (mode=%s, rounds=%d, instances=%d)\n",
		rows.Len(), stats.Mode, stats.Rounds, stats.Instances)
	for rows.Next() {
		var head, tail string
		if err := rows.Scan(&head, &tail); err != nil {
			log.Fatalf("scan: %v", err)
		}
		if head == "vase" && tail == "door" {
			fmt.Println("the vase is ahead of the door")
		}
	}
	rows.Close()

	// A prepared statement: parsed and resolved once, executed repeatedly
	// with the selector parameter bound per call.
	stmt, err := db.Prepare(`Infront{ahead}[hidden_by(Obj)]`)
	if err != nil {
		log.Fatalf("prepare: %v", err)
	}
	defer stmt.Close()
	for _, obj := range []string{"vase", "table"} {
		behind, err := stmt.Query(ctx, obj)
		if err != nil {
			log.Fatalf("stmt query: %v", err)
		}
		fmt.Printf("behind %q: %s\n", obj, behind)
	}

	// EXPLAIN: the compiled plan of a query — the optimizer pass trace,
	// quantifier ordering, and chosen access paths — without executing it...
	plan, err := db.Explain(ctx, `Infront{ahead}[hidden_by("table")]`)
	if err != nil {
		log.Fatalf("explain: %v", err)
	}
	fmt.Println("\nEXPLAIN:")
	fmt.Print(plan.Text())

	// ...and EXPLAIN ANALYZE: the same plan with one execution's counters
	// (result rows, fixpoint rounds, partition lookups vs. scans).
	analyzed, err := db.ExplainQuery(ctx, `Infront{ahead}[hidden_by("table")]`)
	if err != nil {
		log.Fatalf("explain analyze: %v", err)
	}
	fmt.Println("\nEXPLAIN ANALYZE:")
	fmt.Print(analyzed.Text())

	// The compiler side: the augmented quant graph of section 4 / Fig 3.
	fmt.Println("\naugmented quant graph:")
	fmt.Print(db.QuantGraphASCII())
}
