// Package compile implements the three-level compilation and optimization
// framework of section 4 of the paper:
//
//   - Type-checking level: static checking of the module, positivity
//     analysis of every constructor, construction of (a rough version of)
//     the augmented quant graphs, and partitioning of the constructor
//     definitions into disconnected components.
//
//   - Query compilation level: per statement, instantiation of the
//     constructor definition graphs, detection of recursive cycles (which
//     select a fixpoint algorithm), and classification of the evaluation
//     strategy.
//
//   - Runtime level: execution of the compiled statements against a
//     database of relation variables, with selector guards enforced on
//     assignment.
package compile

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/positivity"
	"repro/internal/quantgraph"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/typecheck"
	"repro/internal/value"
)

// Options configures compilation.
type Options struct {
	// Strict enforces the positivity constraint at compile time, as the
	// paper's DBPL compiler does. Non-strict compilation admits
	// non-monotonic constructors, evaluated naively with oscillation
	// detection (section 3.3's strange example).
	Strict bool
}

// Strategy classifies how a statement's constructed ranges are evaluated.
type Strategy uint8

// Strategies.
const (
	// StrategyPlain means no constructor applications occur.
	StrategyPlain Strategy = iota
	// StrategyDecompile means constructors occur but none is recursive:
	// the applications unfold into subqueries over base relations.
	StrategyDecompile
	// StrategyFixpoint means a recursive cycle occurs: a least-fixpoint
	// algorithm is generated (semi-naive by default).
	StrategyFixpoint
)

func (s Strategy) String() string {
	switch s {
	case StrategyPlain:
		return "plain"
	case StrategyDecompile:
		return "decompile"
	default:
		return "fixpoint"
	}
}

// StmtPlan is the query-compilation-level record for one statement.
type StmtPlan struct {
	Stmt         ast.Stmt
	Strategy     Strategy
	Constructors []string // constructor names applied (transitively)
}

// Program is a compiled module.
type Program struct {
	Module   *ast.Module
	Checker  *typecheck.Checker
	Registry *core.Registry
	Graph    *quantgraph.Graph
	// Positivity holds the per-constructor analysis from the type-checking
	// level.
	Positivity map[string]positivity.Report
	// Recursive lists constructors on cycles of the augmented graph.
	Recursive []string
	// Components partitions constructor names into disconnected subgraphs
	// (the preliminary partitioning of section 4).
	Components [][]string
	// Plans holds the per-statement strategies.
	Plans []StmtPlan
}

// Compile parses, checks, and plans a DBPL module.
func Compile(src string, opts Options) (*Program, error) {
	m, err := parser.ParseModule(src)
	if err != nil {
		return nil, err
	}
	return CompileModule(m, opts)
}

// CompileModule compiles an already-parsed module with a fresh checker and
// registry.
func CompileModule(m *ast.Module, opts Options) (*Program, error) {
	chk := typecheck.New()
	reg := core.NewRegistry()
	return CompileModuleInto(m, chk, reg, opts)
}

// CompileModuleInto compiles a module into an existing checker and registry,
// accumulating declarations across modules (the package dbpl façade executes
// successive modules against one database this way).
func CompileModuleInto(m *ast.Module, chk *typecheck.Checker, reg *core.Registry, opts Options) (*Program, error) {
	chk.Strict = opts.Strict
	if err := chk.CheckModule(m); err != nil {
		return nil, err
	}

	p := &Program{
		Module:     m,
		Checker:    chk,
		Registry:   reg,
		Positivity: make(map[string]positivity.Report),
	}
	p.Registry.Strict = opts.Strict

	// Register constructors with the engine registry and record positivity.
	var decls []*ast.ConstructorDecl
	for _, d := range m.Decls {
		cd, ok := d.(*ast.ConstructorDecl)
		if !ok {
			continue
		}
		decls = append(decls, cd)
		sig := chk.Constructors[cd.Name]
		c, err := p.Registry.Register(cd, sig.Result)
		if err != nil {
			return nil, err
		}
		p.Positivity[cd.Name] = c.Report
	}

	// Type-checking level: augmented quant graph, partitioning, cycles.
	p.Graph = quantgraph.Build(decls)
	p.Recursive = p.Graph.RecursiveConstructors()
	p.Components = constructorComponents(p.Graph)

	// Query compilation level: classify each statement.
	recursive := make(map[string]bool, len(p.Recursive))
	for _, n := range p.Recursive {
		recursive[n] = true
	}
	deps := constructorDeps(decls)
	for _, s := range m.Stmts {
		plan := StmtPlan{Stmt: s, Strategy: StrategyPlain}
		names := stmtConstructors(s, deps)
		if len(names) > 0 {
			plan.Strategy = StrategyDecompile
			for _, n := range names {
				if recursive[n] {
					plan.Strategy = StrategyFixpoint
					break
				}
			}
			plan.Constructors = names
		}
		p.Plans = append(p.Plans, plan)
	}
	return p, nil
}

// constructorComponents projects graph components onto constructor names.
func constructorComponents(g *quantgraph.Graph) [][]string {
	var out [][]string
	for _, comp := range g.Components() {
		var names []string
		for _, id := range comp {
			n := g.Nodes[id]
			if n.Kind == quantgraph.HeadNode {
				names = append(names, n.Constructor)
			}
		}
		if len(names) > 0 {
			sort.Strings(names)
			out = append(out, names)
		}
	}
	return out
}

// constructorDeps maps each constructor to the constructors its body applies.
func constructorDeps(decls []*ast.ConstructorDecl) map[string][]string {
	deps := make(map[string][]string, len(decls))
	for _, d := range decls {
		seen := make(map[string]bool)
		ast.WalkRanges(d.Body, func(r *ast.Range) {
			for _, s := range r.Suffixes {
				if s.Kind == ast.SuffixConstructor {
					seen[s.Name] = true
				}
			}
		})
		var names []string
		for n := range seen {
			names = append(names, n)
		}
		sort.Strings(names)
		deps[d.Name] = names
	}
	return deps
}

// stmtConstructors returns all constructor names a statement applies,
// transitively through constructor bodies.
func stmtConstructors(s ast.Stmt, deps map[string][]string) []string {
	seen := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		for _, d := range deps[name] {
			visit(d)
		}
	}
	collect := func(r *ast.Range) {
		for _, suf := range r.Suffixes {
			if suf.Kind == ast.SuffixConstructor {
				visit(suf.Name)
			}
		}
	}
	switch t := s.(type) {
	case *ast.Show:
		walkRangeDeep(t.Expr, collect)
	case *ast.Assign:
		walkRangeDeep(t.Expr, collect)
		for i := range t.Suffixes {
			if t.Suffixes[i].Kind == ast.SuffixConstructor {
				visit(t.Suffixes[i].Name)
			}
		}
	}
	var names []string
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func walkRangeDeep(r *ast.Range, fn func(*ast.Range)) {
	fn(r)
	if r.Sub != nil {
		ast.WalkRanges(r.Sub, fn)
	}
	for i := range r.Suffixes {
		for _, a := range r.Suffixes[i].Args {
			if a.Rel != nil {
				walkRangeDeep(a.Rel, fn)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Runtime level
// ---------------------------------------------------------------------------

// Runtime executes a compiled program against a database.
type Runtime struct {
	Program *Program
	DB      *store.Database
	Engine  *core.Engine
	Env     *eval.Env
	// Out receives SHOW output; nil discards it.
	Out io.Writer
}

// NewRuntime declares the module's variables in the database (if absent) and
// wires up the evaluation environment and engine.
func NewRuntime(p *Program, db *store.Database, out io.Writer) (*Runtime, error) {
	env := eval.NewEnv()
	for name, sig := range p.Checker.Selectors {
		env.Selectors[name] = sig.Decl
	}
	for name, rt := range p.Checker.RelTypes {
		env.RelTypes[name] = rt
	}
	for name, rt := range p.Checker.Vars {
		if _, ok := db.Get(name); !ok {
			if err := db.Declare(name, rt); err != nil {
				return nil, err
			}
		}
	}
	en := core.NewEngine(p.Registry, env)
	rt := &Runtime{Program: p, DB: db, Engine: en, Env: env, Out: out}
	return rt, nil
}

// refreshEnv re-binds the environment's relation variables to the database's
// current values.
func (rt *Runtime) refreshEnv() {
	for _, name := range rt.DB.Names() {
		if r, ok := rt.DB.Get(name); ok {
			rt.Env.Rels[name] = r
		}
	}
	rt.Env.ResetMemo()
}

// Run executes all statements in order.
func (rt *Runtime) Run() error {
	for i, s := range rt.Program.Module.Stmts {
		if err := rt.runStmt(s); err != nil {
			return fmt.Errorf("statement %d (%s): %w", i+1, s, err)
		}
	}
	return nil
}

// Eval evaluates a range expression against the current database state.
func (rt *Runtime) Eval(r *ast.Range) (*relation.Relation, error) {
	rt.refreshEnv()
	return rt.Env.Range(r)
}

// EvalQuery parses and evaluates an ad-hoc range expression.
func (rt *Runtime) EvalQuery(src string) (*relation.Relation, error) {
	r, err := parser.ParseRange(src)
	if err != nil {
		return nil, err
	}
	return rt.Eval(r)
}

func (rt *Runtime) runStmt(s ast.Stmt) error {
	switch t := s.(type) {
	case *ast.Show:
		rel, err := rt.Eval(t.Expr)
		if err != nil {
			return err
		}
		if rt.Out != nil {
			// Stream tuple by tuple instead of rendering one big string.
			if _, err := fmt.Fprintf(rt.Out, "%s = ", t.Expr); err != nil {
				return err
			}
			if _, err := rel.WriteTo(rt.Out); err != nil {
				return err
			}
			if _, err := io.WriteString(rt.Out, "\n"); err != nil {
				return err
			}
		}
		return nil
	case *ast.Assign:
		rel, err := rt.Eval(t.Expr)
		if err != nil {
			return err
		}
		guards, err := rt.guardsFor(t)
		if err != nil {
			return err
		}
		return rt.DB.Assign(t.Target, rel, guards...)
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

// guardsFor builds the selector guards for an assignment target: the paper's
// Infront[refint] := rex semantics.
func (rt *Runtime) guardsFor(t *ast.Assign) ([]store.Guard, error) {
	var guards []store.Guard
	for i := range t.Suffixes {
		suf := &t.Suffixes[i]
		if suf.Kind != ast.SuffixSelector {
			return nil, fmt.Errorf("assignment through a constructed relation %q is not defined (constructors derive, they do not store)", suf.Name)
		}
		sig, ok := rt.Program.Checker.Selectors[suf.Name]
		if !ok {
			return nil, fmt.Errorf("unknown selector %q", suf.Name)
		}
		args, err := rt.Env.ResolveArgs(suf.Args)
		if err != nil {
			return nil, err
		}
		guard, err := SelectorGuard(rt.Env, sig.Decl, sig.ForType.Element, args)
		if err != nil {
			return nil, err
		}
		guards = append(guards, guard)
	}
	return guards, nil
}

// SelectorGuard compiles a selector declaration plus actual arguments into a
// store.Guard closure — the paper's "logical access path": a compiled
// procedure with the parameters substituted.
func SelectorGuard(env *eval.Env, decl *ast.SelectorDecl, elem schema.RecordType, args []eval.Resolved) (store.Guard, error) {
	if len(args) != len(decl.Params) {
		return store.Guard{}, fmt.Errorf("selector %q expects %d argument(s), got %d",
			decl.Name, len(decl.Params), len(args))
	}
	scoped := env.Clone()
	for i, p := range decl.Params {
		if args[i].IsScalar {
			scoped.Scalars[p.Name] = args[i].Scalar
		} else {
			scoped.Rels[p.Name] = args[i].Rel
		}
	}
	return store.Guard{
		Name: decl.Name,
		Pred: func(t value.Tuple) (bool, error) {
			return scoped.EvalPredWithTuple(decl.Where, decl.BodyVar, elem, t)
		},
	}, nil
}
