// Package quantgraph implements the augmented quant graphs of section 4 of
// the paper (Fig 3). A quant graph represents a relational calculus query
// [JaKo 83]: a node per tuple variable with its range definition and directed
// arcs for join terms. The *augmented* graph adds special nodes for
// constructor heads, arcs for the attribute relationships between the result
// relation and the range definitions, and arcs from each quantified node with
// a constructed range relation to the corresponding constructor head —
// yielding the equivalent of a clause interconnectivity graph [Sick 76].
//
// The compiler uses the graph in two ways (both implemented here):
//
//   - Partitioning: disconnected components of the constructor dependency
//     graph are compiled independently (the "type-checking level").
//
//   - Cycle analysis: recursive cycles require least-fixpoint evaluation;
//     acyclic components can be decompiled into ordinary subqueries (the
//     "query compilation level").
package quantgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// NodeKind distinguishes node roles.
type NodeKind uint8

// Node kinds.
const (
	// HeadNode represents a constructor head (the augmentation of Fig 3).
	HeadNode NodeKind = iota
	// VarNode represents a tuple variable with its range definition.
	VarNode
)

// Node is one vertex of the augmented quant graph.
type Node struct {
	ID   int
	Kind NodeKind
	// Constructor holds the constructor name for HeadNodes and, for
	// VarNodes whose range is a constructor application, the applied name.
	Constructor string
	// Var and Range describe VarNodes: the tuple variable and the textual
	// range definition (EACH Var IN Range).
	Var   string
	Range string
	// Branch is the branch index (within a constructor body) the node
	// belongs to; -1 for head nodes.
	Branch int
}

// Label renders the node for display.
func (n *Node) Label() string {
	if n.Kind == HeadNode {
		return "CONSTRUCTOR " + n.Constructor
	}
	return fmt.Sprintf("EACH %s IN %s", n.Var, n.Range)
}

// ArcKind distinguishes arc roles.
type ArcKind uint8

// Arc kinds.
const (
	// JoinArc links two variable nodes sharing a join term.
	JoinArc ArcKind = iota
	// HeadArc links a constructor head to the range nodes that feed its
	// result attributes.
	HeadArc
	// CallArc links a variable node with a constructed range to the head
	// of the applied constructor (step 2 of the paper's algorithm).
	CallArc
)

// Arc is a directed edge with a descriptive label (e.g. the join term or the
// attribute correspondence).
type Arc struct {
	From, To int
	Kind     ArcKind
	Label    string
}

// Graph is an augmented quant graph.
type Graph struct {
	Nodes []*Node
	Arcs  []*Arc
	// heads maps constructor names to their head node ids.
	heads map[string]int
}

// New returns an empty graph.
func New() *Graph { return &Graph{heads: make(map[string]int)} }

func (g *Graph) addNode(n *Node) int {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

func (g *Graph) addArc(from, to int, kind ArcKind, label string) {
	g.Arcs = append(g.Arcs, &Arc{From: from, To: to, Kind: kind, Label: label})
}

// Build constructs the augmented quant graph for a set of constructor
// declarations (step 1 and 2 of the paper's algorithm). Declarations may
// reference each other; unknown constructor applications get dangling head
// nodes so partial programs can still be visualized.
func Build(decls []*ast.ConstructorDecl) *Graph {
	g := New()
	// Head nodes first.
	for _, d := range decls {
		g.heads[d.Name] = g.addNode(&Node{Kind: HeadNode, Constructor: d.Name, Branch: -1})
	}
	for _, d := range decls {
		g.addConstructorBody(d)
	}
	return g
}

func (g *Graph) headFor(name string) int {
	if id, ok := g.heads[name]; ok {
		return id
	}
	id := g.addNode(&Node{Kind: HeadNode, Constructor: name, Branch: -1})
	g.heads[name] = id
	return id
}

func (g *Graph) addConstructorBody(d *ast.ConstructorDecl) {
	head := g.heads[d.Name]
	for bi := range d.Body.Branches {
		br := &d.Body.Branches[bi]
		if br.Literal != nil {
			continue
		}
		varNode := make(map[string]int)
		for _, bd := range br.Binds {
			id := g.addNode(&Node{
				Kind: VarNode, Var: bd.Var, Range: bd.Range.String(), Branch: bi,
			})
			varNode[bd.Var] = id
			// CallArc for constructed ranges (step 2): from the quantified
			// node to the constructor head, checking the suffix chain.
			for _, suf := range bd.Range.Suffixes {
				if suf.Kind == ast.SuffixConstructor {
					g.Nodes[id].Constructor = suf.Name
					g.addArc(id, g.headFor(suf.Name), CallArc,
						fmt.Sprintf("%s ranges over %s", bd.Var, suf.Name))
				}
			}
		}
		// HeadArcs: attribute relationships between the result relation and
		// the range definitions (the "front/tail" arcs of Fig 3).
		if br.Target == nil {
			if id, ok := varNode[br.Binds[0].Var]; ok {
				g.addArc(head, id, HeadArc, "= "+br.Binds[0].Var)
			}
		} else {
			for _, t := range br.Target {
				if f, ok := t.(ast.Field); ok {
					if id, ok := varNode[f.Var]; ok {
						g.addArc(head, id, HeadArc, f.Var+"."+f.Attr)
					}
				}
			}
		}
		// JoinArcs from equality conjuncts over two variables.
		if br.Where != nil {
			for _, c := range conjuncts(br.Where) {
				cmp, ok := c.(ast.Cmp)
				if !ok {
					continue
				}
				lf, lok := cmp.L.(ast.Field)
				rf, rok := cmp.R.(ast.Field)
				if !lok || !rok || lf.Var == rf.Var {
					continue
				}
				from, fok := varNode[lf.Var]
				to, tok := varNode[rf.Var]
				if fok && tok {
					g.addArc(from, to, JoinArc, cmp.String())
				}
			}
		}
	}
}

func conjuncts(p ast.Pred) []ast.Pred {
	if a, ok := p.(ast.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []ast.Pred{p}
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

// adjacency returns the successor lists.
func (g *Graph) adjacency() [][]int {
	adj := make([][]int, len(g.Nodes))
	for _, a := range g.Arcs {
		adj[a.From] = append(adj[a.From], a.To)
	}
	return adj
}

// SCCs returns the strongly connected components (Tarjan), each as a sorted
// list of node ids, in reverse topological order.
func (g *Graph) SCCs() [][]int {
	n := len(g.Nodes)
	adj := g.adjacency()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var out [][]int
	counter := 0

	var strong func(v int)
	strong = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			out = append(out, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strong(v)
		}
	}
	return out
}

// Components returns the weakly connected components — the preliminary
// partitioning of constructor definitions the paper performs at the
// type-checking level.
func (g *Graph) Components() [][]int {
	n := len(g.Nodes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, a := range g.Arcs {
		ra, rb := find(a.From), find(a.To)
		if ra != rb {
			parent[rb] = ra
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for _, members := range groups {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// RecursiveConstructors returns the names of constructors that participate
// in a cycle of the augmented graph — the components for which the compiler
// must generate a fixpoint algorithm (step 3).
func (g *Graph) RecursiveConstructors() []string {
	recursive := make(map[string]bool)
	for _, comp := range g.SCCs() {
		cyclic := len(comp) > 1
		if !cyclic {
			// A single node is cyclic if it has a self-arc.
			v := comp[0]
			for _, a := range g.Arcs {
				if a.From == v && a.To == v {
					cyclic = true
					break
				}
			}
		}
		if !cyclic {
			continue
		}
		for _, v := range comp {
			if g.Nodes[v].Kind == HeadNode {
				recursive[g.Nodes[v].Constructor] = true
			}
		}
	}
	out := make([]string, 0, len(recursive))
	for name := range recursive {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

// DOT renders the graph in Graphviz syntax.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph quantgraph {\n  rankdir=TB;\n")
	for _, n := range g.Nodes {
		shape := "box"
		if n.Kind == HeadNode {
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", n.ID, n.Label(), shape)
	}
	for _, a := range g.Arcs {
		style := "solid"
		if a.Kind == CallArc {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q, style=%s];\n", a.From, a.To, a.Label, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the graph as indented text, in the spirit of the paper's
// Fig 3.
func (g *Graph) ASCII() string {
	var b strings.Builder
	out := make(map[int][]*Arc)
	for _, a := range g.Arcs {
		out[a.From] = append(out[a.From], a)
	}
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "[%d] %s\n", n.ID, n.Label())
		for _, a := range out[n.ID] {
			kind := map[ArcKind]string{JoinArc: "join", HeadArc: "attr", CallArc: "call"}[a.Kind]
			fmt.Fprintf(&b, "     --%s--> [%d] %s   (%s)\n", kind, a.To, g.Nodes[a.To].Label(), a.Label)
		}
	}
	recs := g.RecursiveConstructors()
	if len(recs) > 0 {
		fmt.Fprintf(&b, "recursive cycles: %s (least fixpoint required)\n", strings.Join(recs, ", "))
	} else {
		b.WriteString("acyclic: decompile to subqueries on base relations\n")
	}
	return b.String()
}
