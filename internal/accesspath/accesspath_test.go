package accesspath

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/value"
	"repro/internal/workload"
)

var binT = workload.BinaryStringRelType("infrontrel", "front", "back")

func selector(t *testing.T) *ast.SelectorDecl {
	t.Helper()
	m, err := parser.ParseModule(`
MODULE m;
SELECTOR hidden_by (Obj: STRING) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;
END m.
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range m.Decls {
		if sd, ok := d.(*ast.SelectorDecl); ok {
			return sd
		}
	}
	t.Fatal("no selector")
	return nil
}

func sample() *relation.Relation {
	r := relation.New(binT)
	r.Add(value.NewTuple(value.Str("table"), value.Str("chair")))
	r.Add(value.NewTuple(value.Str("table"), value.Str("door")))
	r.Add(value.NewTuple(value.Str("vase"), value.Str("table")))
	return r
}

func TestLogicalPath(t *testing.T) {
	decl := selector(t)
	lp, err := NewLogical(eval.NewEnv(), decl, binT.Element)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lp.Instantiate(sample(), value.Str("table"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("logical path: %s", got)
	}
}

func TestPartitionAttrDetection(t *testing.T) {
	decl := selector(t)
	attr, ok := PartitionAttr(decl)
	if !ok || attr != "front" {
		t.Errorf("PartitionAttr: %q %v", attr, ok)
	}
	// Non-indexable body.
	m, _ := parser.ParseModule(`
MODULE m;
SELECTOR odd FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front # r.back END odd;
END m.
`)
	var other *ast.SelectorDecl
	for _, d := range m.Decls {
		if sd, ok := d.(*ast.SelectorDecl); ok {
			other = sd
		}
	}
	if _, ok := PartitionAttr(other); ok {
		t.Error("parameterless selector must not be partitionable")
	}
}

func TestPhysicalPathLookupAndMaintenance(t *testing.T) {
	base := sample()
	pp, err := BuildPhysical(base, "front")
	if err != nil {
		t.Fatal(err)
	}
	if pp.Partitions() != 2 {
		t.Errorf("partitions: %d", pp.Partitions())
	}
	if got := pp.Lookup(value.Str("table")); got.Len() != 2 {
		t.Errorf("Lookup(table): %s", got)
	}
	if got := pp.Lookup(value.Str("ghost")); got.Len() != 0 {
		t.Errorf("Lookup(ghost): %s", got)
	}
	// Maintenance under insert/delete ([ShTZ 84] concern).
	pp.Insert(value.NewTuple(value.Str("ghost"), value.Str("wall")))
	if pp.Lookup(value.Str("ghost")).Len() != 1 || pp.Partitions() != 3 {
		t.Error("insert maintenance failed")
	}
	if !pp.Delete(value.NewTuple(value.Str("ghost"), value.Str("wall"))) {
		t.Error("delete must report presence")
	}
	if pp.Partitions() != 2 {
		t.Error("empty partitions must be pruned")
	}
	// The physical path agrees with the logical path for every constant.
	decl := selector(t)
	lp, _ := NewLogical(eval.NewEnv(), decl, binT.Element)
	for _, c := range []string{"table", "vase", "ghost"} {
		want, err := lp.Instantiate(base, value.Str(c))
		if err != nil {
			t.Fatal(err)
		}
		if got := pp.Lookup(value.Str(c)); !got.Equal(want) {
			t.Errorf("physical/logical disagree on %q: %s vs %s", c, got, want)
		}
	}
}

func TestBuildPhysicalUnknownAttr(t *testing.T) {
	if _, err := BuildPhysical(sample(), "nope"); err == nil {
		t.Error("unknown attribute must fail")
	}
}
