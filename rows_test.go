package dbpl

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
)

const kindsModule = `
MODULE kinds;
TYPE namet = STRING;
TYPE cnt   = INTEGER;
TYPE flag  = BOOLEAN;
TYPE mixed = RELATION OF RECORD name: namet; n: cnt; ok: flag END;
VAR M: mixed;
M := {<"a", 1, TRUE>, <"b", 2, FALSE>};
END kinds.
`

// TestRowsScanAnyAllKinds pins the *any conversions: every scalar kind comes
// back as its Go-native form, never as an internal value type.
func TestRowsScanAnyAllKinds(t *testing.T) {
	db := New()
	if _, err := db.Exec(kindsModule); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContext(context.Background(), `{EACH m IN M: m.name = "a"}`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no row")
	}
	var name, n, ok any
	if err := rows.Scan(&name, &n, &ok); err != nil {
		t.Fatal(err)
	}
	if s, isStr := name.(string); !isStr || s != "a" {
		t.Fatalf("string column scanned into *any as %T(%v)", name, name)
	}
	if i, isInt := n.(int64); !isInt || i != 1 {
		t.Fatalf("integer column scanned into *any as %T(%v)", n, n)
	}
	if b, isBool := ok.(bool); !isBool || b != true {
		t.Fatalf("boolean column scanned into *any as %T(%v)", ok, ok)
	}
	// A *Value destination still hands out the raw value for callers that
	// want it.
	if !rows.Next() {
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRowsScanAnyInvalidValueErrors ensures an invalid value surfaces as a
// Scan error instead of leaking an unusable internal zero Value through
// *any.
func TestRowsScanAnyInvalidValueErrors(t *testing.T) {
	r := &Rows{cols: []string{"x"}, cur: Tuple{Value{}}}
	var dst any
	err := r.Scan(&dst)
	if err == nil || !strings.Contains(err.Error(), "cannot scan") {
		t.Fatalf("scan of invalid value into *any: got %v, want error", err)
	}
	if dst != nil {
		t.Fatalf("destination written despite error: %v", dst)
	}
	if r.Err() == nil {
		t.Fatal("Scan error not observable through Err after the loop")
	}
}

// TestRowsScanErrorSticky: a Scan failure ends the loop and is reported by
// Err afterwards, database/sql style.
func TestRowsScanErrorSticky(t *testing.T) {
	db := New()
	if _, err := db.Exec(kindsModule); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContext(context.Background(), `{EACH m IN M: TRUE}`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	seen := 0
	for rows.Next() {
		var wrong int
		if err := rows.Scan(&wrong); err == nil {
			t.Fatal("arity-mismatched Scan succeeded")
		}
		seen++
	}
	if seen != 1 {
		t.Fatalf("iteration continued after Scan error: %d rows", seen)
	}
	if err := rows.Err(); err == nil || !strings.Contains(err.Error(), "destination") {
		t.Fatalf("Err after failed Scan: %v", err)
	}
}

// TestRowsErrReportsCancellation: cancelling the query context mid-iteration
// stops the cursor and Err reports the cause.
func TestRowsErrReportsCancellation(t *testing.T) {
	db := New()
	if _, err := db.Exec(kindsModule); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, `{EACH m IN M: TRUE}`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no first row")
	}
	cancel()
	if rows.Next() {
		t.Fatal("Next true after cancellation")
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after cancellation: %v", err)
	}
	// A clean full iteration still reports nil.
	rows2, err := db.QueryContext(context.Background(), `{EACH m IN M: TRUE}`)
	if err != nil {
		t.Fatal(err)
	}
	for rows2.Next() {
	}
	if err := rows2.Err(); err != nil {
		t.Fatalf("Err after clean exhaustion: %v", err)
	}
}

// TestRecordStatsZeroValueStats is the LastStats regression test: an
// evaluation whose stats happen to equal the zero Stats value must still
// replace the previous query's stats — "did anything run" is answered by the
// engine's apply counter, not by comparing against Stats{}.
func TestRecordStatsZeroValueStats(t *testing.T) {
	db := New()
	db.statsMu.Lock()
	db.lastStats = Stats{Rounds: 7, Tuples: 99} // a previous query's stats
	db.statsMu.Unlock()

	en := core.NewEngine(core.NewRegistry(), eval.NewEnv())

	// No evaluation ran: the previous stats stay (the documented contract).
	db.recordStats(en)
	if got := db.LastStats(); got.Rounds != 7 {
		t.Fatalf("stats replaced without any evaluation: %+v", got)
	}

	// An evaluation ran and legitimately produced zero-valued stats
	// (SemiNaive is mode 0): they must be recorded, not skipped as "empty".
	en.Applies.Add(1)
	en.SetLastStats(core.Stats{})
	db.recordStats(en)
	if got := db.LastStats(); got.Rounds != 0 || got.Tuples != 0 {
		t.Fatalf("zero-valued stats skipped, LastStats stale: %+v", got)
	}
}

// TestLastStatsAcrossQueries covers the public contract end to end: a
// constructor query records stats, a cheap non-constructor query leaves them
// alone, and the next constructor query replaces them.
func TestLastStatsAcrossQueries(t *testing.T) {
	db := chainDB(t, 4)
	if _, err := db.Query(`E{tc}`); err != nil {
		t.Fatal(err)
	}
	first := db.LastStats()
	if first.Rounds == 0 {
		t.Fatalf("constructor query recorded no stats: %+v", first)
	}
	if _, err := db.Query(`{EACH e IN E: TRUE}`); err != nil {
		t.Fatal(err)
	}
	if got := db.LastStats(); got != first {
		t.Fatalf("cheap query disturbed LastStats: %+v -> %+v", first, got)
	}
}
