package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/horn"
	"repro/internal/parser"
	"repro/internal/prolog"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/typecheck"
	"repro/internal/value"
	"repro/internal/workload"
)

var binT = workload.BinaryStringRelType("r", "a", "b")

func testEnv() *eval.Env {
	e := eval.NewEnv()
	rel := relation.New(binT)
	names := []string{"x", "y", "z", "w"}
	rng := rand.New(rand.NewSource(5))
	for _, p := range names {
		for _, q := range names {
			if rng.Intn(2) == 0 {
				rel.Add(value.NewTuple(value.Str(p), value.Str(q)))
			}
		}
	}
	e.Rels["R"] = rel
	e.Rels["S"] = rel.Select(func(t value.Tuple) bool { return t[0] != t[1] })
	return e
}

func evalBranchSet(t *testing.T, e *eval.Env, brs ...ast.Branch) *relation.Relation {
	t.Helper()
	e.ResetMemo()
	out, err := e.SetExpr(&ast.SetExpr{Branches: brs}, nil)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return out
}

// TestN1PreservesSemantics: nesting conjuncts into ranges must not change
// the result (rule N1 of [JaKo 83]).
func TestN1PreservesSemantics(t *testing.T) {
	srcs := []string{
		`{EACH r IN R: r.a = "x" AND r.b = "y"}`,
		`{<f.a, g.b> OF EACH f IN R, EACH g IN S: f.b = g.a AND f.a = "x" AND g.b # "z"}`,
		`{EACH r IN R: r.a # r.b AND r.a = "y"}`,
	}
	for _, src := range srcs {
		s, err := parser.ParseSetExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		e := testEnv()
		orig := evalBranchSet(t, e, s.Branches[0])
		nested, moved := NestBranch(s.Branches[0], "")
		got := evalBranchSet(t, e, nested)
		if !got.Equal(orig) {
			t.Errorf("%q: nesting changed the result (%d vs %d tuples, %d moved)",
				src, got.Len(), orig.Len(), moved)
		}
		// Flattening the nested branch must also agree.
		flat, n := FlattenBranch(nested)
		if n != moved {
			t.Errorf("%q: flattened %d, nested %d", src, n, moved)
		}
		back := evalBranchSet(t, e, flat)
		if !back.Equal(orig) {
			t.Errorf("%q: flatten changed the result", src)
		}
	}
}

func TestN2N3PreserveSemantics(t *testing.T) {
	quantSrcs := []string{
		`SOME s IN R (s.a = "x" AND s.b = q.b)`,
		`ALL s IN R (NOT (s.a = "x") OR s.b = q.b)`,
	}
	for _, src := range quantSrcs {
		p, err := parser.ParsePred(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		q := p.(ast.Quant)
		nested, changed := NestQuant(q)
		if !changed {
			t.Fatalf("%q: no rewrite happened", src)
		}
		e := testEnv()
		rel, _ := e.Rels["R"]
		var mismatch bool
		rel.Each(func(tup value.Tuple) bool {
			e.ResetMemo()
			got1, err1 := e.EvalPredWithTuple(q, "q", binT.Element, tup)
			got2, err2 := e.EvalPredWithTuple(nested, "q", binT.Element, tup)
			if err1 != nil || err2 != nil || got1 != got2 {
				mismatch = true
				return false
			}
			return true
		})
		if mismatch {
			t.Errorf("%q: N2/N3 changed the result", src)
		}
	}
}

// ---------------------------------------------------------------------------
// Constraint propagation (Cases 1–3)
// ---------------------------------------------------------------------------

const joinConsSrc = `
MODULE m;
TYPE pt = STRING;
TYPE rrel = RELATION OF RECORD a, b: pt END;
CONSTRUCTOR combine FOR Rel: rrel (Other: rrel): rrel;
BEGIN
  EACH r IN Rel: TRUE,
  <f.a, g.b> OF EACH f IN Rel, EACH g IN Other: f.b = g.a
END combine;
END m.
`

func TestPushSelectionNonRecursive(t *testing.T) {
	m, err := parser.ParseModule(joinConsSrc)
	if err != nil {
		t.Fatal(err)
	}
	chk := typecheck.New()
	if err := chk.CheckModule(m); err != nil {
		t.Fatal(err)
	}
	sig := chk.Constructors["combine"]

	pred, _ := parser.ParsePred(`res.a = "x"`)
	specialized, err := PushSelection(sig.Decl, sig.Result.Element, "res", pred,
		func(*ast.Range) (schema.RecordType, bool) { return sig.ForType.Element, true })
	if err != nil {
		t.Fatal(err)
	}

	// Evaluate both: full apply + filter vs the specialized constructor.
	reg := core.NewRegistry()
	if _, err := reg.Register(sig.Decl, sig.Result); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(specialized, sig.Result); err != nil {
		t.Fatal(err)
	}
	e := testEnv()
	en := core.NewEngine(reg, e)
	base := e.Rels["R"]
	other := e.Rels["S"]
	full, err := en.Apply("combine", base, []eval.Resolved{{Rel: other}})
	if err != nil {
		t.Fatal(err)
	}
	want := full.Select(func(tup value.Tuple) bool { return tup[0] == value.Str("x") })
	got, err := en.Apply("combine_selected", base, []eval.Resolved{{Rel: other}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("pushed selection %s != filtered %s", got, want)
	}
}

func TestPushSelectionRejectsRecursive(t *testing.T) {
	src := `
MODULE m;
TYPE pt = STRING;
TYPE rrel = RELATION OF RECORD a, b: pt END;
CONSTRUCTOR tc FOR Rel: rrel (): rrel;
BEGIN
  EACH r IN Rel: TRUE,
  <f.a, g.b> OF EACH f IN Rel, EACH g IN Rel{tc}: f.b = g.a
END tc;
END m.
`
	m, _ := parser.ParseModule(src)
	chk := typecheck.New()
	if err := chk.CheckModule(m); err != nil {
		t.Fatal(err)
	}
	sig := chk.Constructors["tc"]
	pred, _ := parser.ParsePred(`res.a = "x"`)
	_, err := PushSelection(sig.Decl, sig.Result.Element, "res", pred, nil)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("expected recursion rejection, got %v", err)
	}
}

func TestPushSelectionRejectsNonPositivePredicate(t *testing.T) {
	m, _ := parser.ParseModule(joinConsSrc)
	chk := typecheck.New()
	if err := chk.CheckModule(m); err != nil {
		t.Fatal(err)
	}
	sig := chk.Constructors["combine"]
	pred, _ := parser.ParsePred(`NOT (res IN Hidden)`)
	_, err := PushSelection(sig.Decl, sig.Result.Element, "res", pred, nil)
	if err == nil || !strings.Contains(err.Error(), "positivity") {
		t.Errorf("expected positivity rejection, got %v", err)
	}
}

// ---------------------------------------------------------------------------
// Magic sets
// ---------------------------------------------------------------------------

func tcRules() []prolog.Clause {
	return []prolog.Clause{
		prolog.Rule(prolog.NewAtom("path", prolog.V(0), prolog.V(1)),
			prolog.NewAtom("edge", prolog.V(0), prolog.V(1))),
		prolog.Rule(prolog.NewAtom("path", prolog.V(0), prolog.V(1)),
			prolog.NewAtom("edge", prolog.V(0), prolog.V(2)),
			prolog.NewAtom("path", prolog.V(2), prolog.V(1))),
	}
}

func TestMagicTransformRestrictsComputation(t *testing.T) {
	prog := prolog.NewProgram(tcRules()...)
	// Two disconnected chains; binding the source to the small one must
	// keep the fixpoint away from the big one.
	for i := 0; i < 4; i++ {
		prog.Add(prolog.Fact("edge", value.Str(node("s", i)), value.Str(node("s", i+1))))
	}
	for i := 0; i < 40; i++ {
		prog.Add(prolog.Fact("edge", value.Str(node("big", i)), value.Str(node("big", i+1))))
	}
	goal := prolog.NewAtom("path", prolog.CStr(node("s", 0)), prolog.V(9))
	res, err := MagicTransform(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	pe := prolog.NewEngine(res.Program)
	answers, err := pe.SolveTabled(res.Goal)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Errorf("restricted answers: %d, want 4", len(answers))
	}
	// The adorned extension must stay near the small chain's closure (15
	// pairs), far below the big chain's 820.
	peFull := prolog.NewEngine(prog)
	fullAns, err := peFull.SolveTabled(prolog.NewAtom("path", prolog.V(0), prolog.V(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(fullAns) <= len(answers)*10 {
		t.Errorf("expected strong restriction: full %d vs magic-visible %d", len(fullAns), len(answers))
	}
}

func node(p string, i int) string { return p + string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func TestMagicAgreesWithDirectOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		prog := prolog.NewProgram(tcRules()...)
		edges := workload.RandomGraph(8, 12, rng.Int63())
		for _, e := range edges {
			prog.Add(prolog.Fact("edge",
				value.Str(workload.NodeName(e.From)), value.Str(workload.NodeName(e.To))))
		}
		src := value.Str(workload.NodeName(rng.Intn(8)))
		direct := prolog.NewEngine(prog)
		want, err := direct.SolveTabled(prolog.NewAtom("path", prolog.C(src), prolog.V(0)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := MagicTransform(prog, prolog.NewAtom("path", prolog.C(src), prolog.V(0)))
		if err != nil {
			t.Fatal(err)
		}
		pe := prolog.NewEngine(res.Program)
		got, err := pe.SolveTabled(res.Goal)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: magic %d answers, direct %d", trial, len(got), len(want))
		}
	}
}

func TestMagicThroughConstructorEngine(t *testing.T) {
	// The full E7 pipeline in miniature: magic-transform, translate to
	// constructors, evaluate set-orientedly.
	prog := prolog.NewProgram(tcRules()...)
	goal := prolog.NewAtom("path", prolog.CStr("n0000"), prolog.V(0))
	res, err := MagicTransform(prog, goal)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := horn.ToConstructors(res.Program, schema.StringType())
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	for _, p := range bundle.IDB {
		if _, err := reg.Register(bundle.Decls[p], bundle.RelTypes[p]); err != nil {
			t.Fatal(err)
		}
	}
	en := core.NewEngine(reg, eval.NewEnv())
	edges := workload.EdgesToRelation(bundle.RelTypes["edge"], workload.Chain(6))
	var args []eval.Resolved
	for _, e := range bundle.EDB {
		if e == "edge" {
			args = append(args, eval.Resolved{Rel: edges})
		} else {
			args = append(args, eval.Resolved{Rel: relation.New(bundle.RelTypes[e])})
		}
	}
	for _, q := range bundle.IDB {
		args = append(args, eval.Resolved{Rel: relation.New(bundle.RelTypes[q])})
	}
	seed := relation.New(bundle.RelTypes[res.Goal.Pred])
	out, err := en.Apply(horn.ConstructorName(res.Goal.Pred), seed, args)
	if err != nil {
		t.Fatal(err)
	}
	// Reachable pairs from n0000 on a 6-chain: 6.
	got := out.Select(func(tup value.Tuple) bool { return tup[0] == value.Str("n0000") })
	if got.Len() != 6 {
		t.Errorf("magic through constructors: %d answers, want 6: %s", got.Len(), out)
	}
}

func TestMagicGoalMustBeDerived(t *testing.T) {
	prog := prolog.NewProgram(tcRules()...)
	_, err := MagicTransform(prog, prolog.NewAtom("edge", prolog.V(0), prolog.V(1)))
	if err == nil {
		t.Error("magic over a base predicate must fail")
	}
}
