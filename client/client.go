// Package client is the network counterpart of the embedded dbpl API: a
// client.DB speaks the dbpld wire protocol and mirrors dbpl.DB method for
// method — Exec, Prepare/Stmt with positional parameters, streaming Rows,
// Begin/Tx, Explain, Health — so moving a program between an embedded
// database and a dbpld server is a one-constructor switch (dbpl.Open ↔
// client.Open). Sentinel errors survive the wire: errors.Is(err,
// dbpl.ErrReadOnly), dbpl.ErrLimit, dbpl.ErrClosed, dbpl.ErrTxDone, and
// dbpl.ErrStmtClosed hold against a remote database exactly as against an
// embedded one.
//
// A DB owns one connection, and the protocol is strict request/response, so
// methods serialize on an internal mutex; open one DB per goroutine-heavy
// worker (connections are cheap) rather than sharing a single one under
// contention. Rows fetch tuple batches lazily — the server materializes a
// snapshot but ships only what is pulled, so closing a cursor early costs
// one round trip, not the result set.
package client

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	dbpl "repro"

	"repro/internal/wire"
)

// DefaultFetchSize is how many tuples a Rows pulls per round trip.
const DefaultFetchSize = 256

// Option configures Open.
type Option func(*config)

type config struct {
	token       string
	dialTimeout time.Duration
	fetchSize   int
}

// WithToken presents an auth token during the handshake.
func WithToken(token string) Option { return func(c *config) { c.token = token } }

// WithDialTimeout bounds the TCP connect (default 5s).
func WithDialTimeout(d time.Duration) Option { return func(c *config) { c.dialTimeout = d } }

// WithFetchSize sets the tuples-per-round-trip of Rows (default
// DefaultFetchSize).
func WithFetchSize(n int) Option { return func(c *config) { c.fetchSize = n } }

// DB is a connection to a dbpld server, mirroring the embedded dbpl.DB.
type DB struct {
	mu     sync.Mutex
	conn   net.Conn
	f      *framer
	role   string
	closed bool

	fetchSize int
}

// Open dials a dbpld server and performs the protocol handshake.
func Open(addr string, opts ...Option) (*DB, error) {
	cfg := config{dialTimeout: 5 * time.Second, fetchSize: DefaultFetchSize}
	for _, o := range opts {
		o(&cfg)
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.dialTimeout)
	if err != nil {
		return nil, err
	}
	f := newFramer(conn)
	role, err := wire.ClientHello(conn, f.br, cfg.token)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &DB{conn: conn, f: f, role: role, fetchSize: cfg.fetchSize}, nil
}

// Role reports what the server announced in the handshake: "primary" or
// "replica".
func (c *DB) Role() string { return c.role }

// Close hangs up. Server-held state of this session (cursors, statements,
// open transactions) is released by the server on disconnect — transactions
// roll back.
func (c *DB) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// exchange runs one request/response round trip. TErr responses come back as
// *wire.RemoteError (carrying the sentinel mapping); any transport failure
// poisons the connection.
func (c *DB) exchange(ctx context.Context, typ byte, payload []byte, want byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, dbpl.ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(deadline)
		defer c.conn.SetDeadline(time.Time{})
	}
	resp, rerr, err := c.f.roundTrip(typ, payload)
	if err != nil {
		// The exchange died mid-flight; the stream position is unknown, so
		// the connection cannot be trusted for another frame.
		c.closed = true
		c.conn.Close()
		return nil, err
	}
	if rerr != nil {
		return nil, rerr
	}
	if resp.typ != want {
		c.closed = true
		c.conn.Close()
		return nil, fmt.Errorf("client: expected frame type %d, got %d", want, resp.typ)
	}
	return resp.payload, nil
}

// millisLeft converts a context deadline into the wire's timeout field.
func millisLeft(ctx context.Context) uint64 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return uint64(ms)
}

// encodeArgs appends the positional-argument block (count + scalars).
func encodeArgs(e *wire.Enc, args []any) error {
	e.Uvarint(uint64(len(args)))
	for _, a := range args {
		v, err := toValue(a)
		if err != nil {
			return err
		}
		e.Value(v)
	}
	return nil
}

// toValue converts a Go scalar to a DBPL value, mirroring the embedded API's
// accepted argument types.
func toValue(a any) (dbpl.Value, error) {
	switch v := a.(type) {
	case dbpl.Value:
		return v, nil
	case string:
		return dbpl.Str(v), nil
	case int:
		return dbpl.Int(int64(v)), nil
	case int64:
		return dbpl.Int(v), nil
	case bool:
		return dbpl.Bool(v), nil
	default:
		return dbpl.Value{}, fmt.Errorf("dbpl: unsupported argument type %T", a)
	}
}

// Exec runs a DBPL module on the server, returning its SHOW output.
func (c *DB) Exec(src string) (string, error) {
	return c.ExecContext(context.Background(), src)
}

// ExecContext is Exec with cancellation; the deadline also bounds server-side
// execution.
func (c *DB) ExecContext(ctx context.Context, src string) (string, error) {
	e := wire.NewEnc()
	e.Str(src)
	e.Uvarint(millisLeft(ctx))
	payload, err := e.Payload()
	if err != nil {
		return "", err
	}
	resp, err := c.exchange(ctx, wire.TExec, payload, wire.TExecResult)
	if err != nil {
		return "", err
	}
	return wire.NewDec(resp).Str()
}

// QueryContext evaluates a query, returning a streaming cursor. Positional
// parameters ($1, $2, …) bind from args as in the embedded API.
func (c *DB) QueryContext(ctx context.Context, src string, args ...any) (*Rows, error) {
	e := wire.NewEnc()
	e.Str(src)
	e.Uvarint(millisLeft(ctx))
	if err := encodeArgs(e, args); err != nil {
		return nil, err
	}
	payload, err := e.Payload()
	if err != nil {
		return nil, err
	}
	resp, err := c.exchange(ctx, wire.TQuery, payload, wire.TRowsHeader)
	if err != nil {
		return nil, err
	}
	return c.newRows(ctx, resp)
}

// Query is QueryContext without cancellation.
func (c *DB) Query(src string, args ...any) (*Rows, error) {
	return c.QueryContext(context.Background(), src, args...)
}

// Stmt is a server-side prepared statement.
type Stmt struct {
	c      *DB
	id     uint64
	params []string
	closed bool
}

// Prepare parses and plans a query on the server, returning a reusable
// statement handle.
func (c *DB) Prepare(src string) (*Stmt, error) {
	e := wire.NewEnc()
	e.Str(src)
	payload, err := e.Payload()
	if err != nil {
		return nil, err
	}
	resp, err := c.exchange(context.Background(), wire.TPrepare, payload, wire.TPrepared)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp)
	id, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	params := make([]string, 0, n)
	for range n {
		p, err := d.Str()
		if err != nil {
			return nil, err
		}
		params = append(params, p)
	}
	return &Stmt{c: c, id: id, params: params}, nil
}

// Params returns the statement's parameter names in positional order.
func (s *Stmt) Params() []string { return s.params }

// QueryRows executes the statement with positional args, returning a cursor.
func (s *Stmt) QueryRows(ctx context.Context, args ...any) (*Rows, error) {
	if s.closed {
		return nil, dbpl.ErrStmtClosed
	}
	e := wire.NewEnc()
	e.Uvarint(s.id)
	e.Uvarint(millisLeft(ctx))
	if err := encodeArgs(e, args); err != nil {
		return nil, err
	}
	payload, err := e.Payload()
	if err != nil {
		return nil, err
	}
	resp, err := s.c.exchange(ctx, wire.TStmtQuery, payload, wire.TRowsHeader)
	if err != nil {
		return nil, err
	}
	return s.c.newRows(ctx, resp)
}

// Close releases the server-side statement.
func (s *Stmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	e := wire.NewEnc()
	e.Uvarint(s.id)
	payload, err := e.Payload()
	if err != nil {
		return err
	}
	_, err = s.c.exchange(context.Background(), wire.TStmtClose, payload, wire.TOK)
	return err
}

// Tx is a server-side snapshot transaction.
type Tx struct {
	c    *DB
	id   uint64
	done bool
}

// Begin starts a transaction on the server. Replicas refuse with
// dbpl.ErrReadOnly.
func (c *DB) Begin(ctx context.Context) (*Tx, error) {
	resp, err := c.exchange(ctx, wire.TBegin, nil, wire.TTxBegun)
	if err != nil {
		return nil, err
	}
	id, err := wire.NewDec(resp).Uvarint()
	if err != nil {
		return nil, err
	}
	return &Tx{c: c, id: id}, nil
}

// Exec runs module statements inside the transaction, returning SHOW output.
func (t *Tx) Exec(ctx context.Context, src string) (string, error) {
	if t.done {
		return "", dbpl.ErrTxDone
	}
	e := wire.NewEnc()
	e.Uvarint(t.id)
	e.Str(src)
	e.Uvarint(millisLeft(ctx))
	payload, err := e.Payload()
	if err != nil {
		return "", err
	}
	resp, err := t.c.exchange(ctx, wire.TTxExec, payload, wire.TExecResult)
	if err != nil {
		return "", err
	}
	return wire.NewDec(resp).Str()
}

// QueryRows evaluates a query against the transaction's view.
func (t *Tx) QueryRows(ctx context.Context, src string, args ...any) (*Rows, error) {
	if t.done {
		return nil, dbpl.ErrTxDone
	}
	e := wire.NewEnc()
	e.Uvarint(t.id)
	e.Str(src)
	e.Uvarint(millisLeft(ctx))
	if err := encodeArgs(e, args); err != nil {
		return nil, err
	}
	payload, err := e.Payload()
	if err != nil {
		return nil, err
	}
	resp, err := t.c.exchange(ctx, wire.TTxQuery, payload, wire.TRowsHeader)
	if err != nil {
		return nil, err
	}
	return t.c.newRows(ctx, resp)
}

func (t *Tx) end(commit bool) error {
	if t.done {
		return dbpl.ErrTxDone
	}
	typ := wire.TTxRollback
	if commit {
		typ = wire.TTxCommit
	}
	e := wire.NewEnc()
	e.Uvarint(t.id)
	payload, err := e.Payload()
	if err != nil {
		return err
	}
	if _, err := t.c.exchange(context.Background(), typ, payload, wire.TOK); err != nil {
		// A failed commit (e.g. a guard re-check) leaves the transaction
		// open on the server, mirroring the embedded semantics: the caller
		// may fix the offending write and retry, or Rollback.
		return err
	}
	t.done = true
	return nil
}

// Commit publishes the transaction's writes atomically.
func (t *Tx) Commit() error { return t.end(true) }

// Rollback discards the transaction's writes.
func (t *Tx) Rollback() error { return t.end(false) }

// Explain returns the server's rendered query plan.
func (c *DB) Explain(ctx context.Context, src string) (string, error) {
	return c.explain(ctx, src, false)
}

// ExplainAnalyze plans and executes the query, returning the plan annotated
// with runtime statistics.
func (c *DB) ExplainAnalyze(ctx context.Context, src string) (string, error) {
	return c.explain(ctx, src, true)
}

func (c *DB) explain(ctx context.Context, src string, analyze bool) (string, error) {
	e := wire.NewEnc()
	e.Str(src)
	e.Bool(analyze)
	e.Uvarint(millisLeft(ctx))
	payload, err := e.Payload()
	if err != nil {
		return "", err
	}
	resp, err := c.exchange(ctx, wire.TExplain, payload, wire.TExplainText)
	if err != nil {
		return "", err
	}
	return wire.NewDec(resp).Str()
}

// Health is the server's health report: durability state plus, for replicas,
// replication progress.
type Health struct {
	// Role is "primary" or "replica".
	Role string
	// Durable/Degraded/Cause/Generation/Tail mirror dbpl.Health on the
	// server's database.
	Durable    bool
	Degraded   bool
	Cause      string
	Generation uint64
	Tail       uint64
	// Applied, Connected, and StreamErr describe a replica's tail of the
	// primary; zero-valued on a primary.
	Applied   uint64
	Connected bool
	StreamErr string
	// Parallelism is the server executor's worker fan-out (dbpld -parallel).
	Parallelism uint64
	// Materialized-view cache state on the server: enabled flag, live
	// entries, read outcome counters, and queued-delta maintenance backlog.
	MatEnabled    bool
	MatEntries    uint64
	MatHits       uint64
	MatMisses     uint64
	MatMaintained uint64
	MatBacklog    uint64
}

// Health asks the server for its health report.
func (c *DB) Health(ctx context.Context) (Health, error) {
	resp, err := c.exchange(ctx, wire.THealth, nil, wire.THealthInfo)
	if err != nil {
		return Health{}, err
	}
	wh, err := wire.DecodeHealth(resp)
	if err != nil {
		return Health{}, err
	}
	return Health(wh), nil
}

// VarInfo describes one relation variable on the server.
type VarInfo struct {
	Name   string
	Tuples int
}

// Vars lists the server's relation variables and their cardinalities.
func (c *DB) Vars(ctx context.Context) ([]VarInfo, error) {
	resp, err := c.exchange(ctx, wire.TVars, nil, wire.TVarsInfo)
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp)
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	vars := make([]VarInfo, 0, n)
	for range n {
		name, err := d.Str()
		if err != nil {
			return nil, err
		}
		count, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		vars = append(vars, VarInfo{Name: name, Tuples: int(count)})
	}
	return vars, nil
}
