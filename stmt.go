package dbpl

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
)

// Stmt is a prepared query: the source is parsed and its relation, selector,
// and constructor references resolved once, then the statement can be
// executed any number of times — concurrently, if desired — against the
// database's current state. Scalar parameters (bare identifiers that do not
// name a relation variable) are bound positionally on each Query call, in
// order of first appearance in the source.
//
// Physical planning (join index selection) happens per execution, because
// indexes are built against the relation values of the execution's snapshot.
type Stmt struct {
	db     *DB
	src    string
	rng    *ast.Range   // exactly one of rng/set is non-nil
	set    *ast.SetExpr //
	params []string     // scalar parameter names, first-appearance order
	closed atomic.Bool
}

// Prepare parses and resolves a query — a range expression such as
// `Infront[hidden_by(Obj)]{ahead}` or a set expression such as
// `{EACH r IN Infront: TRUE}` — for repeated execution.
func (d *DB) Prepare(src string) (*Stmt, error) {
	st := &Stmt{db: d, src: src}
	r, rerr := parser.ParseRange(src)
	if rerr == nil {
		st.rng = r
	} else {
		s, serr := parser.ParseSetExpr(src)
		if serr != nil {
			// Report the range parse's error: it is the more general form.
			return nil, wrapErr(rerr)
		}
		st.set = s
	}
	if err := st.resolve(); err != nil {
		return nil, err
	}
	return st, nil
}

// prepareCached returns the plan-cached statement for src, preparing and
// caching it on a miss. Used by the one-shot Query entry points. The
// generation check keeps a statement resolved against pre-invalidation
// declarations from being cached after a concurrent clear.
func (d *DB) prepareCached(src string) (*Stmt, error) {
	if st, ok := d.plans.get(src); ok {
		return st, nil
	}
	gen := d.plans.generation()
	st, err := d.Prepare(src)
	if err != nil {
		return nil, err
	}
	d.plans.putAt(gen, src, st)
	return st, nil
}

// Source returns the statement's source text.
func (s *Stmt) Source() string { return s.src }

// Params returns the scalar parameter names in binding order.
func (s *Stmt) Params() []string {
	out := make([]string, len(s.params))
	copy(out, s.params)
	return out
}

// Close invalidates the statement. Executions in flight are unaffected.
func (s *Stmt) Close() error {
	s.closed.Store(true)
	return nil
}

// Query executes the statement against a snapshot of the current state,
// binding args positionally to the statement's scalar parameters (Value,
// string, int, int64, or bool).
func (s *Stmt) Query(ctx context.Context, args ...any) (*Relation, error) {
	rel, err := s.exec(ctx, args)
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// QueryRows is Query with a streaming row cursor over the result.
func (s *Stmt) QueryRows(ctx context.Context, args ...any) (*Rows, error) {
	rel, err := s.exec(ctx, args)
	if err != nil {
		return nil, err
	}
	return newRows(rel), nil
}

func (s *Stmt) exec(ctx context.Context, args []any) (*relation.Relation, error) {
	if s.closed.Load() {
		return nil, ErrStmtClosed
	}
	if len(args) != len(s.params) {
		return nil, fmt.Errorf("dbpl: statement %q expects %d argument(s) %v, got %d",
			s.src, len(s.params), s.params, len(args))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env, en := s.db.callEnv(ctx)
	for i, name := range s.params {
		v, err := toValue(args[i])
		if err != nil {
			return nil, fmt.Errorf("dbpl: binding parameter %q: %w", name, err)
		}
		env.Scalars[name] = v
	}
	var rel *relation.Relation
	var err error
	if s.rng != nil {
		rel, err = env.Range(s.rng)
	} else {
		rel, err = env.SetExpr(s.set, nil)
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	s.db.recordStats(en)
	return rel, nil
}

// ---------------------------------------------------------------------------
// Name resolution (the prepare-time "typecheck" of the query surface)
// ---------------------------------------------------------------------------

// ref is a positioned name reference collected from the query AST.
type ref struct {
	name string
	pos  ast.Pos
}

// sufRef is a selector/constructor application reference.
type sufRef struct {
	kind ast.SuffixKind
	name string
	argc int
	pos  ast.Pos
}

// queryRefs accumulates the references of one query in syntactic order.
type queryRefs struct {
	rels    []ref    // ranges that must name relation variables
	sufs    []sufRef // selector/constructor applications
	scalars []ref    // names that can only be scalar parameters (term position)
	flex    []ref    // bare-identifier arguments: relation or scalar parameter
}

func (q *queryRefs) walkRange(r *ast.Range) {
	if r.Sub != nil {
		q.walkSet(r.Sub)
	} else if r.Var != "" {
		q.rels = append(q.rels, ref{r.Var, r.Pos})
	}
	for i := range r.Suffixes {
		s := &r.Suffixes[i]
		q.sufs = append(q.sufs, sufRef{s.Kind, s.Name, len(s.Args), s.Pos})
		for _, a := range s.Args {
			switch {
			case a.Scalar != nil:
				q.walkTerm(a.Scalar)
			case a.Rel != nil:
				if a.Rel.Sub == nil && len(a.Rel.Suffixes) == 0 {
					// A bare identifier: relation variable or scalar
					// parameter — decided at resolution.
					q.flex = append(q.flex, ref{a.Rel.Var, a.Rel.Pos})
				} else {
					q.walkRange(a.Rel)
				}
			}
		}
	}
}

func (q *queryRefs) walkSet(s *ast.SetExpr) {
	for i := range s.Branches {
		br := &s.Branches[i]
		for _, t := range br.Literal {
			q.walkTerm(t)
		}
		for _, t := range br.Target {
			q.walkTerm(t)
		}
		for _, bd := range br.Binds {
			q.walkRange(bd.Range)
		}
		if br.Where != nil {
			q.walkPred(br.Where)
		}
	}
}

func (q *queryRefs) walkPred(p ast.Pred) {
	switch t := p.(type) {
	case ast.Cmp:
		q.walkTerm(t.L)
		q.walkTerm(t.R)
	case ast.And:
		q.walkPred(t.L)
		q.walkPred(t.R)
	case ast.Or:
		q.walkPred(t.L)
		q.walkPred(t.R)
	case ast.Not:
		q.walkPred(t.P)
	case ast.Quant:
		q.walkRange(t.Range)
		q.walkPred(t.Body)
	case ast.Member:
		for _, tm := range t.Terms {
			q.walkTerm(tm)
		}
		q.walkRange(t.Range)
	}
}

func (q *queryRefs) walkTerm(t ast.Term) {
	switch u := t.(type) {
	case ast.Param:
		q.scalars = append(q.scalars, ref{u.Name, u.Pos})
	case ast.Arith:
		q.walkTerm(u.L)
		q.walkTerm(u.R)
	}
}

// resolve validates every reference against the current declarations and
// derives the statement's scalar parameter list: term-position identifiers
// plus bare-identifier arguments that do not name a relation variable.
func (s *Stmt) resolve() error {
	var q queryRefs
	if s.rng != nil {
		q.walkRange(s.rng)
	} else {
		q.walkSet(s.set)
	}

	d := s.db
	d.mu.RLock()
	decls := d.decls
	st := d.Store
	reg := d.Registry
	d.mu.RUnlock()

	for _, r := range q.rels {
		if _, ok := st.Type(r.name); !ok {
			return fmt.Errorf("dbpl: %s: unknown relation %q", r.pos, r.name)
		}
	}
	for _, sf := range q.sufs {
		switch sf.kind {
		case ast.SuffixSelector:
			decl, ok := decls.selectors[sf.name]
			if !ok {
				return fmt.Errorf("dbpl: %s: unknown selector %q", sf.pos, sf.name)
			}
			if len(decl.Params) != sf.argc {
				return fmt.Errorf("dbpl: %s: selector %q expects %d argument(s), got %d",
					sf.pos, sf.name, len(decl.Params), sf.argc)
			}
		default:
			cons, ok := reg.Lookup(sf.name)
			if !ok {
				return fmt.Errorf("dbpl: %s: unknown constructor %q", sf.pos, sf.name)
			}
			if len(cons.Decl.Params) != sf.argc {
				return fmt.Errorf("dbpl: %s: constructor %q expects %d argument(s), got %d",
					sf.pos, sf.name, len(cons.Decl.Params), sf.argc)
			}
		}
	}

	// Parameter list: scalar-only names, then flex names that do not name a
	// relation, deduplicated in first-appearance order.
	seen := make(map[string]bool)
	for _, r := range q.scalars {
		if !seen[r.name] {
			seen[r.name] = true
			s.params = append(s.params, r.name)
		}
	}
	for _, r := range q.flex {
		if _, isRel := st.Type(r.name); isRel || seen[r.name] {
			continue
		}
		seen[r.name] = true
		s.params = append(s.params, r.name)
	}
	return nil
}

// ---------------------------------------------------------------------------
// LRU plan cache
// ---------------------------------------------------------------------------

// planCache is a mutex-guarded LRU map from query source text to prepared
// statements, consulted by the one-shot Query entry points. The generation
// counter advances on every clear so entries resolved before an
// invalidation cannot be inserted after it.
type planCache struct {
	mu  sync.Mutex
	max int
	gen uint64
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type planEntry struct {
	key string
	st  *Stmt
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *planCache) get(key string) (*Stmt, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry).st, true
}

// generation returns the current invalidation generation, sampled before
// preparing a statement intended for putAt.
func (c *planCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// putAt inserts only if no clear ran since gen was sampled.
func (c *planCache) putAt(gen uint64, key string, st *Stmt) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.m[key]; ok {
		el.Value.(*planEntry).st = st
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&planEntry{key: key, st: st})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*planEntry).key)
	}
}

// Len reports the number of cached plans.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// clear drops every cached plan. Called whenever the declaration state a
// prepared statement resolved against may have changed (module execution,
// programmatic Declare, LoadStore), so stale classifications cannot stick.
func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.ll.Init()
	clear(c.m)
}

// PlanCacheLen reports the number of cached query plans (for tests and
// monitoring).
func (d *DB) PlanCacheLen() int { return d.plans.Len() }
