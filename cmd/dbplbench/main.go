// dbplbench regenerates the experiment tables of EXPERIMENTS.md: every
// figure, worked example, and performance claim of the paper, measured on
// this reproduction.
//
// Usage:
//
//	dbplbench            # run all experiments
//	dbplbench -exp E6    # run one experiment (E1..E8)
//	dbplbench -quick     # smaller workloads for a fast pass
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (E1..E8); empty = all")
	quick := flag.Bool("quick", false, "smaller workloads")
	flag.Parse()

	// A long sweep stops cleanly at the next experiment boundary on the
	// first Ctrl-C; stop() then restores the default handler, so a second
	// Ctrl-C kills an experiment that is still mid-flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	e2sizes := []int{16, 32, 64, 128}
	if *quick {
		e2sizes = []int{8, 16, 32}
	}

	runs := []struct {
		name string
		fn   func() error
	}{
		{"E1", func() error { return experiments.PrintE1(os.Stdout) }},
		{"E2", func() error { return experiments.PrintE2(os.Stdout, e2sizes) }},
		{"E3", func() error { return experiments.PrintE3(os.Stdout) }},
		{"E4", func() error { return experiments.PrintE4(os.Stdout) }},
		{"E5", func() error { return experiments.PrintE5(os.Stdout) }},
		{"E6", func() error { return experiments.PrintE6(os.Stdout) }},
		{"E7", func() error { return experiments.PrintE7(os.Stdout) }},
		{"E8", func() error { return experiments.PrintE8(os.Stdout) }},
	}
	ran := false
	for _, r := range runs {
		if *exp != "" && r.name != *exp {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(1)
		}
		ran = true
		if err := r.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E8)\n", *exp)
		os.Exit(2)
	}
}
