// Package core implements the paper's primary contribution: the constructor
// language construct (section 3). A constructor, applied to a base relation,
// "causes relation membership to become true for all tuples constructable
// through the predicates provided by the constructor definition".
//
// The semantics follows section 3.2 exactly: every constructor application
// apply_j = Actrel{c_j(...)} reachable from a query is *grounded* into an
// instance of a system of equations
//
//	apply_j^(k+1) = g_j(apply_0^k, ..., apply_l^k)
//
// where g_j is the constructor body with formal parameters replaced by their
// actual values, and the joint limit (least fixpoint, [Tars 55]) is computed
// by package fixpoint — naively (the paper's REPEAT loops) or semi-naively.
//
// Mutual recursion (ahead/above in section 3.1) falls out of the grounding:
// the recursive applications inside a body resolve to instances of the same
// system, identified by (constructor, base-relation value, argument values).
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/fixpoint"
	"repro/internal/positivity"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Mode selects the fixpoint strategy.
type Mode uint8

// Fixpoint strategies.
const (
	// SemiNaive is the default differential strategy; it requires
	// monotonicity and therefore falls back to Naive for constructors that
	// fail the positivity check (possible only with a non-strict registry).
	SemiNaive Mode = iota
	// Naive is the paper's REPEAT ... UNTIL loop.
	Naive
)

func (m Mode) String() string {
	if m == Naive {
		return "naive"
	}
	return "semi-naive"
}

// Constructor is a registered constructor definition together with its
// resolved result type and positivity analysis.
type Constructor struct {
	Decl     *ast.ConstructorDecl
	Result   schema.RelationType
	Report   positivity.Report
	Positive bool
}

// Registry holds constructor definitions. Lookups are safe for concurrent
// use with registration (queries resolve constructors while modules are
// being executed).
type Registry struct {
	mu           sync.RWMutex
	constructors map[string]*Constructor
	// Strict rejects non-positive constructors at registration, matching
	// the paper's DBPL compiler ("for simplicity, the DBPL compiler accepts
	// only constructors satisfying the positivity constraint"). Turn it off
	// to experiment with section 3.3's strange constructor. Unlike the
	// constructor map it is not lock-guarded: it is only read on the
	// (serialized) registration path.
	Strict bool
}

// NewRegistry returns an empty, strict registry.
func NewRegistry() *Registry {
	return &Registry{constructors: make(map[string]*Constructor), Strict: true}
}

// Register adds a constructor with its resolved result type. It runs the
// positivity check (the "type-checking level" of section 4) and, when the
// registry is strict, rejects violations.
func (r *Registry) Register(decl *ast.ConstructorDecl, result schema.RelationType) (*Constructor, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.constructors[decl.Name]; dup {
		return nil, fmt.Errorf("constructor %q already defined", decl.Name)
	}
	rep := positivity.CheckConstructor(decl)
	c := &Constructor{Decl: decl, Result: result, Report: rep, Positive: rep.Positive()}
	if r.Strict && !c.Positive {
		return nil, fmt.Errorf("constructor %q: %w", decl.Name, rep.Err(decl.Name))
	}
	r.constructors[decl.Name] = c
	return c, nil
}

// Lookup returns a registered constructor.
func (r *Registry) Lookup(name string) (*Constructor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.constructors[name]
	return c, ok
}

// Names returns the registered constructor names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.constructors))
	for n := range r.constructors {
		out = append(out, n)
	}
	return out
}

// Stats describes the evaluation of one Apply call.
type Stats struct {
	Mode        Mode
	Instances   int // size of the grounded equation system
	Rounds      int
	Evaluations int
	Tuples      int // tuples in the root application's value
	MaxDelta    int // largest per-round delta (semi-naive only)
}

// Engine evaluates constructor applications. It implements
// eval.ConstructorResolver, so installing it in an eval.Env makes ranges like
// Infront{ahead} work inside arbitrary queries.
type Engine struct {
	Registry *Registry
	// GlobalEnv supplies selector declarations, named relation variables
	// (selector bodies may reference globals, like refint's Objects), and
	// relation types.
	GlobalEnv *eval.Env
	Mode      Mode
	// MaxRounds bounds iterations of non-monotonic systems; 0 means a
	// large default.
	MaxRounds int
	// Parallelism bounds the worker fan-out of fixpoint rounds: when the
	// grounded system has more than one instance, up to Parallelism equations
	// are evaluated concurrently per round. 0 or 1 keeps rounds serial.
	// (Intra-equation parallelism is governed separately by the eval.Env.)
	Parallelism int
	// Applies counts completed top-level Apply calls on this engine. It is
	// atomic because engines are shared across concurrent queries.
	Applies atomic.Uint64

	statsMu sync.Mutex
	// lastStats records the most recent top-level Apply. Its zero value is a
	// legitimate outcome, so "did anything run" is answered by Applies, not
	// by comparing LastStats against Stats{}.
	lastStats Stats
}

// LastStats returns the stats of the most recent completed top-level Apply.
func (en *Engine) LastStats() Stats {
	en.statsMu.Lock()
	defer en.statsMu.Unlock()
	return en.lastStats
}

// SetLastStats overwrites the recorded stats. It exists for embedders and
// tests that simulate an Apply; ApplyContext calls it internally.
func (en *Engine) SetLastStats(s Stats) {
	en.statsMu.Lock()
	en.lastStats = s
	en.statsMu.Unlock()
}

// NewEngine creates an engine over a registry and global environment and
// installs itself as the environment's constructor resolver.
func NewEngine(reg *Registry, global *eval.Env) *Engine {
	en := &Engine{Registry: reg, GlobalEnv: global, Mode: SemiNaive}
	global.Constructors = en
	return en
}

// ApplyConstructor implements eval.ConstructorResolver.
func (en *Engine) ApplyConstructor(ctx context.Context, name string, base *relation.Relation, args []eval.Resolved) (*relation.Relation, error) {
	return en.ApplyContext(ctx, name, base, args)
}

// Apply evaluates Actrel{c(args)}: grounds the reachable application system
// and computes its least fixpoint, returning the root application's value.
func (en *Engine) Apply(name string, base *relation.Relation, args []eval.Resolved) (*relation.Relation, error) {
	return en.ApplyContext(context.Background(), name, base, args)
}

// ApplyContext is Apply with cancellation: ctx is checked between fixpoint
// rounds and inside the branch loops of every equation evaluation, so a
// runaway recursive constructor can be aborted.
func (en *Engine) ApplyContext(ctx context.Context, name string, base *relation.Relation, args []eval.Resolved) (*relation.Relation, error) {
	sys := &system{engine: en, ctx: ctx, byKey: make(map[string]*instance), fps: make(map[*relation.Relation]string)}
	rootKey, err := sys.ground(name, base, args)
	if err != nil {
		return nil, err
	}

	mode := en.Mode
	allowNonMono := false
	for _, inst := range sys.instances {
		if !inst.cons.Positive {
			mode = Naive // semi-naive requires monotonicity
			allowNonMono = true
		}
	}
	maxRounds := en.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1 << 20
	}
	opts := fixpoint.Options{MaxRounds: maxRounds, AllowNonMonotonic: allowNonMono, Ctx: ctx, Parallelism: en.Parallelism}

	var state []*relation.Relation
	var fstats fixpoint.Stats
	if mode == Naive {
		state, fstats, err = fixpoint.Naive(sys, opts)
	} else {
		state, fstats, err = fixpoint.SemiNaive(sys, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("constructor %s: %w", name, err)
	}
	root := sys.byKey[rootKey]
	en.Applies.Add(1)
	en.SetLastStats(Stats{
		Mode:        mode,
		Instances:   len(sys.instances),
		Rounds:      fstats.Rounds,
		Evaluations: fstats.Evaluations,
		Tuples:      state[root.index].Len(),
		MaxDelta:    fstats.MaxDeltaSize,
	})
	return state[root.index], nil
}

// ---------------------------------------------------------------------------
// Grounding (section 3.2: "replacing all formal parameters by their actual
// values" and collecting the applications apply_1..apply_l)
// ---------------------------------------------------------------------------

// markerPrefix names occurrence markers; the parser can never produce an
// identifier starting with '$', so markers cannot collide with user names.
const markerPrefix = "$app#"

func isMarkerName(name string) bool { return strings.HasPrefix(name, markerPrefix) }

// instance is one grounded constructor application.
type instance struct {
	index int
	key   string
	cons  *Constructor
	// body is the instantiated body: formal names are bound in env, and
	// every recursive constructor application range has been rewritten to a
	// unique occurrence marker $app#<n> whose referenced instance is in
	// occKeys.
	body *ast.SetExpr
	env  *eval.Env
	// occKeys maps occurrence marker names to instance keys.
	occKeys map[string]string
	// branches classifies each body branch for semi-naive evaluation.
	branches []branchInfo
}

// branchInfo records, per branch, which occurrence markers appear and whether
// each appears as a bare top-level binding range (differentiable) or in a
// nested position (quantifier range, membership, suffixed marker), which
// forces full re-evaluation of the branch every round.
type branchInfo struct {
	recursive      bool
	differentiable bool
	bindingOccs    []string // marker names appearing as bare binding ranges
}

type system struct {
	engine    *Engine
	ctx       context.Context
	instances []*instance
	byKey     map[string]*instance
	fps       map[*relation.Relation]string // fingerprint cache
}

func (s *system) fp(r *relation.Relation) string {
	if f, ok := s.fps[r]; ok {
		return f
	}
	f := fixpoint.Fingerprint(r)
	s.fps[r] = f
	return f
}

// appKey builds the canonical identity of an application from the
// constructor name, the base relation's content, and the argument values.
func (s *system) appKey(name string, base *relation.Relation, args []eval.Resolved) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte(0)
	b.WriteString(s.fp(base))
	for _, a := range args {
		if a.IsScalar {
			b.WriteString("\x00s")
			b.WriteString(value.Tuple{a.Scalar}.Key())
		} else {
			b.WriteString("\x00r")
			b.WriteString(s.fp(a.Rel))
		}
	}
	return b.String()
}

// ground ensures an instance exists for the application and returns its key.
func (s *system) ground(name string, base *relation.Relation, args []eval.Resolved) (string, error) {
	cons, ok := s.engine.Registry.Lookup(name)
	if !ok {
		return "", fmt.Errorf("unknown constructor %q", name)
	}
	if len(args) != len(cons.Decl.Params) {
		return "", fmt.Errorf("constructor %q expects %d argument(s), got %d",
			name, len(cons.Decl.Params), len(args))
	}
	key := s.appKey(name, base, args)
	if _, exists := s.byKey[key]; exists {
		return key, nil
	}

	inst := &instance{
		index:   len(s.instances),
		key:     key,
		cons:    cons,
		body:    ast.CopySetExpr(cons.Decl.Body),
		env:     s.engine.GlobalEnv.Clone(),
		occKeys: make(map[string]string),
	}
	inst.env.Ctx = s.ctx
	// Bind formals: the base-relation variable and the parameters. The
	// bindings shadow any same-named globals, which is exactly the paper's
	// static scoping of constructor definitions.
	inst.env.Rels[cons.Decl.ForVar] = base
	for i, p := range cons.Decl.Params {
		if args[i].IsScalar {
			inst.env.Scalars[p.Name] = args[i].Scalar
		} else {
			inst.env.Rels[p.Name] = args[i].Rel
		}
	}
	// Register before walking the body so recursive references resolve to
	// this very instance instead of recursing forever.
	s.byKey[key] = inst
	s.instances = append(s.instances, inst)

	// Rewrite every constructor application inside the body into an
	// occurrence marker, grounding the referenced instances.
	occCounter := 0
	var rewriteErr error
	ast.WalkRanges(inst.body, func(r *ast.Range) {
		if rewriteErr != nil {
			return
		}
		if err := s.rewriteRange(inst, r, &occCounter); err != nil {
			rewriteErr = err
		}
	})
	if rewriteErr != nil {
		return "", rewriteErr
	}

	inst.classifyBranches()
	return key, nil
}

// rewriteRange replaces the constructor suffixes of one range with an
// occurrence marker. The prefix (base plus any selector suffixes before the
// first constructor suffix) must evaluate to a concrete relation at grounding
// time; suffixes after the constructor application remain on the marker and
// are re-applied against the current approximation each round.
func (s *system) rewriteRange(inst *instance, r *ast.Range, occCounter *int) error {
	first := -1
	for i, suf := range r.Suffixes {
		if suf.Kind == ast.SuffixConstructor {
			first = i
			break
		}
	}
	if first < 0 {
		return nil
	}
	if containsMarker(r, first) {
		return fmt.Errorf(
			"constructor %s: application %s uses a recursive occurrence in its base or arguments; merging such subgraphs requires runtime compilation (section 4) and is not supported",
			inst.cons.Decl.Name, r.Suffixes[first].Name)
	}
	// Evaluate the prefix concretely.
	prefix := &ast.Range{Var: r.Var, Sub: r.Sub, Suffixes: r.Suffixes[:first], Pos: r.Pos}
	base, err := inst.env.Range(prefix)
	if err != nil {
		return err
	}
	suf := r.Suffixes[first]
	args, err := inst.env.ResolveArgs(suf.Args)
	if err != nil {
		return err
	}
	childKey, err := s.ground(suf.Name, base, args)
	if err != nil {
		return err
	}
	marker := fmt.Sprintf("%s%d", markerPrefix, *occCounter)
	*occCounter++
	inst.occKeys[marker] = childKey

	rest := r.Suffixes[first+1:]
	for _, nxt := range rest {
		if nxt.Kind == ast.SuffixConstructor {
			return fmt.Errorf(
				"constructor %s: chained constructor application %s on a recursive occurrence is not supported",
				inst.cons.Decl.Name, nxt.Name)
		}
	}
	r.Var = marker
	r.Sub = nil
	r.Suffixes = rest
	return nil
}

// containsMarker reports whether the range's base, sub-expression, or the
// arguments of suffixes up to and including the first constructor suffix
// mention an occurrence marker (a recursive value), which cannot be evaluated
// at grounding time.
func containsMarker(r *ast.Range, firstCons int) bool {
	found := false
	check := func(rr *ast.Range) {
		if isMarkerName(rr.Var) {
			found = true
		}
	}
	if isMarkerName(r.Var) {
		found = true
	}
	if r.Sub != nil {
		ast.WalkRanges(r.Sub, check)
	}
	for i := 0; i <= firstCons && i < len(r.Suffixes); i++ {
		for _, a := range r.Suffixes[i].Args {
			if a.Rel != nil {
				walkOne(a.Rel, check)
			}
		}
	}
	return found
}

func walkOne(r *ast.Range, fn func(*ast.Range)) {
	fn(r)
	if r.Sub != nil {
		ast.WalkRanges(r.Sub, fn)
	}
	for i := range r.Suffixes {
		for _, a := range r.Suffixes[i].Args {
			if a.Rel != nil {
				walkOne(a.Rel, fn)
			}
		}
	}
}

// classifyBranches precomputes, per branch, the occurrence markers and
// whether semi-naive differentiation applies.
func (inst *instance) classifyBranches() {
	inst.branches = make([]branchInfo, len(inst.body.Branches))
	for i := range inst.body.Branches {
		br := &inst.body.Branches[i]
		info := &inst.branches[i]
		if br.Literal != nil {
			continue
		}
		bare := make([]string, 0, len(br.Binds))
		nested := false
		seen := func(r *ast.Range) {
			if isMarkerName(r.Var) {
				nested = true
			}
		}
		for _, bd := range br.Binds {
			if isMarkerName(bd.Range.Var) && bd.Range.Sub == nil && len(bd.Range.Suffixes) == 0 {
				bare = append(bare, bd.Range.Var)
				continue
			}
			walkOne(bd.Range, seen)
		}
		if br.Where != nil {
			predRangesOnly(br.Where, seen)
		}
		info.recursive = nested || len(bare) > 0
		info.differentiable = !nested && len(bare) > 0
		info.bindingOccs = bare
	}
}

// predRangesOnly walks ranges inside a predicate.
func predRangesOnly(p ast.Pred, fn func(*ast.Range)) {
	switch q := p.(type) {
	case ast.And:
		predRangesOnly(q.L, fn)
		predRangesOnly(q.R, fn)
	case ast.Or:
		predRangesOnly(q.L, fn)
		predRangesOnly(q.R, fn)
	case ast.Not:
		predRangesOnly(q.P, fn)
	case ast.Quant:
		walkOne(q.Range, fn)
		predRangesOnly(q.Body, fn)
	case ast.Member:
		walkOne(q.Range, fn)
	}
}

// ---------------------------------------------------------------------------
// fixpoint.Evaluator implementation
// ---------------------------------------------------------------------------

// N implements fixpoint.Evaluator.
func (s *system) N() int { return len(s.instances) }

// NewRelation implements fixpoint.Evaluator.
func (s *system) NewRelation(i int) *relation.Relation {
	return relation.New(s.instances[i].cons.Result)
}

// bindState binds every occurrence marker of inst to the referenced
// instance's relation from the given state, applying overrides (deltas), and
// resets the env's range memo.
func (s *system) bindState(inst *instance, state []*relation.Relation, overrides map[string]*relation.Relation) {
	for marker, key := range inst.occKeys {
		ref := s.byKey[key]
		rel := state[ref.index]
		if o, ok := overrides[marker]; ok {
			rel = o
		}
		inst.env.Rels[marker] = rel
	}
	inst.env.ResetMemo()
}

// EvalFull implements fixpoint.Evaluator: g_i over the full state.
func (s *system) EvalFull(i int, cur []*relation.Relation) (*relation.Relation, error) {
	inst := s.instances[i]
	s.bindState(inst, cur, nil)
	return inst.env.SetExpr(inst.body, &inst.cons.Result)
}

// EvalIncrement implements fixpoint.Evaluator. Non-recursive branches
// contribute nothing after round 0; differentiable branches are evaluated
// once per bare recursive occurrence with that occurrence restricted to the
// referenced instance's delta; non-differentiable recursive branches are
// re-evaluated in full.
func (s *system) EvalIncrement(i int, cur, delta []*relation.Relation) (*relation.Relation, error) {
	inst := s.instances[i]
	out := relation.New(inst.cons.Result)
	for bi := range inst.body.Branches {
		info := inst.branches[bi]
		br := &inst.body.Branches[bi]
		switch {
		case !info.recursive:
			continue
		case info.differentiable:
			for _, marker := range info.bindingOccs {
				ref := s.byKey[inst.occKeys[marker]]
				if delta[ref.index].IsEmpty() {
					continue
				}
				s.bindState(inst, cur, map[string]*relation.Relation{marker: delta[ref.index]})
				if err := inst.env.EvalBranchIntoExcluding(br, out, cur[i]); err != nil {
					return nil, err
				}
			}
		default:
			s.bindState(inst, cur, nil)
			if err := inst.env.EvalBranchIntoExcluding(br, out, cur[i]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
