package dbpl_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	dbpl "repro"
)

const guardModule = `
MODULE g;
TYPE namet   = STRING;
TYPE objrel  = RELATION OF RECORD name: namet END;
TYPE edgerel = RELATION OF RECORD a, b: namet END;
VAR Objects: objrel;
VAR Edges: edgerel;

SELECTOR refint () FOR Rel: edgerel;
BEGIN EACH r IN Rel: SOME o IN Objects (r.a = o.name) END refint;

SELECTOR has_name (N: namet) FOR Rel: objrel;
BEGIN EACH o IN Rel: o.name = N END has_name;

(* Guard whose body applies an indexable selector: evaluating it takes the
   store's access-path route. *)
SELECTOR refhash () FOR Rel: edgerel;
BEGIN EACH r IN Rel: SOME o IN Objects[has_name("x")] (r.a = o.name) END refhash;

(* Guard parameterized by the relation it checks against. *)
SELECTOR refpar (Objs: objrel) FOR Rel: edgerel;
BEGIN EACH r IN Rel: SOME o IN Objs (r.a = o.name) END refpar;
END g.
`

func TestTxIsolationAndCommit(t *testing.T) {
	ctx := context.Background()
	db := openWith(t, cadModule)

	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("Infront", dbpl.NewTuple(dbpl.Str("lamp"), dbpl.Str("vase"))); err != nil {
		t.Fatal(err)
	}
	// The write is visible inside the transaction...
	in, err := tx.Query(ctx, `Infront[hidden_by("lamp")]`)
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 1 {
		t.Fatalf("tx query sees %d tuples, want 1", in.Len())
	}
	// ...but not outside until Commit.
	out, err := db.Query(`Infront[hidden_by("lamp")]`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("uncommitted write visible outside the transaction: %s", out)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out, err = db.Query(`Infront[hidden_by("lamp")]`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("committed write not visible: %s", out)
	}
	// Finished transactions reject further use.
	if err := tx.Insert("Infront", dbpl.NewTuple(dbpl.Str("x"), dbpl.Str("y"))); !errors.Is(err, dbpl.ErrTxDone) {
		t.Errorf("Insert after Commit: %v, want ErrTxDone", err)
	}
	if err := tx.Rollback(); !errors.Is(err, dbpl.ErrTxDone) {
		t.Errorf("Rollback after Commit: %v, want ErrTxDone", err)
	}
}

func TestTxRollback(t *testing.T) {
	ctx := context.Background()
	db := openWith(t, cadModule)
	before, _ := db.Relation("Infront")

	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("Infront", dbpl.NewTuple(dbpl.Str("lamp"), dbpl.Str("vase"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	after, _ := db.Relation("Infront")
	if !before.Equal(after) {
		t.Fatalf("rollback left writes behind: %s != %s", before, after)
	}
}

func TestTxExecAndShow(t *testing.T) {
	ctx := context.Background()
	db := openWith(t, cadModule)

	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tx.Exec(ctx, `
MODULE t;
Infront := {<"a","b">};
SHOW Infront;
END t.
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `<"a", "b">`) {
		t.Errorf("SHOW output %q does not reflect the transaction's write", out)
	}
	// Declarations are rejected inside a transaction.
	if _, err := tx.Exec(ctx, `
MODULE d;
TYPE t2 = STRING;
END d.
`); err == nil {
		t.Error("Exec accepted a declaration inside a transaction")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestTxGuardCheckAtCommit exercises the commit-time guard re-check: a
// guarded assignment that is valid when written becomes invalid when a later
// write in the same transaction shrinks the relation its guard references.
func TestTxGuardCheckAtCommit(t *testing.T) {
	ctx := context.Background()
	db := openWith(t, guardModule)
	if err := db.Insert("Objects", dbpl.NewTuple(dbpl.Str("x"))); err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Write-time check passes: "x" is an object.
	if _, err := tx.Exec(ctx, `
MODULE t;
Edges[refint] := {<"x","y">};
END t.
`); err != nil {
		t.Fatal(err)
	}
	// A later write invalidates the guard's referenced relation.
	empty, _ := db.Relation("Objects")
	if err := tx.Assign("Objects", empty.Difference(empty)); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	var gv *dbpl.GuardViolationError
	if !errors.As(err, &gv) {
		t.Fatalf("Commit: %v, want GuardViolationError", err)
	}
	// The failed commit left the transaction open and the database untouched.
	edges, _ := db.Relation("Edges")
	if edges.Len() != 0 {
		t.Fatalf("failed commit published writes: %s", edges)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestTxRepeatedSelectorQuery is a regression test for the access-path cache
// serving a stale partition inside a transaction: overlay relations are
// mutated in place by Tx.Insert, so the store must decline to serve
// partitions over them and each query must see the transaction's latest
// writes.
func TestTxRepeatedSelectorQuery(t *testing.T) {
	ctx := context.Background()
	db := openWith(t, cadModule)
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if err := tx.Insert("Infront", dbpl.NewTuple(dbpl.Str("lamp"), dbpl.Str("vase"))); err != nil {
		t.Fatal(err)
	}
	// First query over the overlay relation (may tempt the provider to
	// cache a partition keyed by its pointer).
	r1, err := tx.Query(ctx, `Infront[hidden_by("lamp")]`)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 1 {
		t.Fatalf("first tx query: %d tuples, want 1", r1.Len())
	}
	// Second insert mutates the same overlay relation in place.
	if err := tx.Insert("Infront", dbpl.NewTuple(dbpl.Str("lamp"), dbpl.Str("door"))); err != nil {
		t.Fatal(err)
	}
	r2, err := tx.Query(ctx, `Infront[hidden_by("lamp")]`)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("second tx query served stale state: %d tuples, want 2", r2.Len())
	}
}

// TestTxUnguardedAssignSupersedesGuard checks that an unguarded assignment
// to the same variable clears a previously recorded guard, matching the
// non-transactional semantics where every assignment is checked
// independently.
func TestTxUnguardedAssignSupersedesGuard(t *testing.T) {
	ctx := context.Background()
	db := openWith(t, guardModule)
	if err := db.Insert("Objects", dbpl.NewTuple(dbpl.Str("x"))); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `
MODULE t;
Edges[refint] := {<"x","y">};
END t.
`); err != nil {
		t.Fatal(err)
	}
	// Unguarded assignment replaces the value wholesale with a tuple that
	// would violate refint; the earlier guard must not apply to it.
	edges, _ := db.Relation("Edges")
	repl := edges.Difference(edges)
	if err := repl.Insert(dbpl.NewTuple(dbpl.Str("zzz"), dbpl.Str("y"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Assign("Edges", repl); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit re-applied a superseded guard: %v", err)
	}
	got, _ := db.Relation("Edges")
	if got.Len() != 1 || !got.Contains(dbpl.NewTuple(dbpl.Str("zzz"), dbpl.Str("y"))) {
		t.Fatalf("committed value: %s", got)
	}
}

// TestGuardWithIndexableSelectorBody is a deadlock regression test: a guard
// predicate whose body applies an indexable selector reaches the store's
// Partition (which read-locks the store) while the assignment is in
// progress — the guard checks must therefore run outside the store's write
// lock.
func TestGuardWithIndexableSelectorBody(t *testing.T) {
	db := openWith(t, guardModule)
	if err := db.Insert("Objects", dbpl.NewTuple(dbpl.Str("x"))); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec(`
MODULE t;
Edges[refhash] := {<"x","y">};
END t.
`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("guarded assignment deadlocked (guard evaluated under the store write lock)")
	}
	edges, _ := db.Relation("Edges")
	if edges.Len() != 1 {
		t.Fatalf("guarded assignment did not land: %s", edges)
	}
}

// TestTxGuardParamRecheckedAgainstFinalState checks that a guard's
// relation-valued selector arguments are re-resolved at commit, so the
// re-check runs against the transaction's final state rather than the values
// captured when the assignment executed.
func TestTxGuardParamRecheckedAgainstFinalState(t *testing.T) {
	ctx := context.Background()
	db := openWith(t, guardModule)
	if err := db.Insert("Objects", dbpl.NewTuple(dbpl.Str("x"))); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	// Write-time check passes: the Objects argument contains "x".
	if _, err := tx.Exec(ctx, `
MODULE t;
Edges[refpar(Objects)] := {<"x","y">};
END t.
`); err != nil {
		t.Fatal(err)
	}
	// Empty the relation the guard argument names; the commit-time re-check
	// must resolve the argument afresh and reject.
	obj, _ := db.Relation("Objects")
	if err := tx.Assign("Objects", obj.Difference(obj)); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	var gv *dbpl.GuardViolationError
	if !errors.As(err, &gv) {
		t.Fatalf("Commit: %v, want GuardViolationError (stale guard argument)", err)
	}
}

// TestTxGuardCommitOK is the counterpart: an untouched guard re-checks clean
// and the commit publishes.
func TestTxGuardCommitOK(t *testing.T) {
	ctx := context.Background()
	db := openWith(t, guardModule)
	if err := db.Insert("Objects", dbpl.NewTuple(dbpl.Str("x"))); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `
MODULE t;
Edges[refint] := {<"x","y">};
END t.
`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	edges, _ := db.Relation("Edges")
	if edges.Len() != 1 {
		t.Fatalf("committed guarded assignment missing: %s", edges)
	}
}
