package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"syscall"
	"testing"

	"repro/internal/fsx"
	"repro/internal/pagestore"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/value"
)

// The crash-simulation harness, in the style of SQLite's test VFS and
// FoundationDB's simulated disk: record a deterministic mutation workload over
// a fault-free FaultFS to enumerate every filesystem operation it performs,
// then re-run the workload once per operation index k with a fault injected at
// k — an I/O error, a full crash, or a torn write followed by a crash — and
// verify that reopening from the surviving state recovers exactly a committed
// prefix of the workload, never a partial batch and never a lost committed
// record.
//
// The oracle is a shadow store.Database that never touches the filesystem:
// each workload step is mirrored into it only when the real, logged database
// reported success, so the shadow always holds the committed prefix.

const simDir = "db"

// simStep is one unit of the recorded workload.
type simStep struct {
	name    string
	mutates bool // changes logical state (checkpoints do not)
	run     func(db *store.Database) error
}

func intRelType(name string) schema.RelationType {
	return schema.RelationType{
		Name: name,
		Element: schema.RecordType{Attrs: []schema.Attribute{
			{Name: "n", Type: schema.ScalarType{Name: "INTEGER", Kind: value.KindInt}},
		}},
		Key: []string{"n"},
	}
}

func ints(ns ...int64) []value.Tuple {
	out := make([]value.Tuple, len(ns))
	for i, n := range ns {
		out[i] = value.NewTuple(value.Int(n))
	}
	return out
}

// simWorkload is the recorded workload: declarations, inserts, a wholesale
// assignment, transaction commits, and an explicit checkpoint, sized so the
// CheckpointEvery used by the harness also triggers automatic rotation
// mid-run. Every step is deterministic, so a fault-free pass enumerates the
// exact operation sequence every faulted pass will replay up to its fault.
func simWorkload() []simStep {
	assignRel := func() *relation.Relation {
		rel := relation.New(pairType("edge"))
		for _, tp := range []value.Tuple{tup("x", "y"), tup("y", "z")} {
			if err := rel.Insert(tp); err != nil {
				panic(err)
			}
		}
		return rel
	}
	return []simStep{
		{"declare-edge", true, func(db *store.Database) error { return db.Declare("Edge", pairType("edge")) }},
		{"insert-edge-1", true, func(db *store.Database) error { return db.Insert("Edge", tup("a", "b"), tup("b", "c")) }},
		{"declare-node", true, func(db *store.Database) error { return db.Declare("Node", intRelType("node")) }},
		{"insert-node-1", true, func(db *store.Database) error { return db.Insert("Node", ints(1, 2, 3)...) }},
		{"tx-commit", true, func(db *store.Database) error {
			tx := db.Begin()
			if err := tx.Insert("Edge", tup("c", "d")); err != nil {
				return err
			}
			if err := tx.Insert("Node", ints(4)...); err != nil {
				return err
			}
			return tx.Commit()
		}},
		{"checkpoint", false, func(db *store.Database) error { return db.Checkpoint() }},
		{"insert-edge-2", true, func(db *store.Database) error { return db.Insert("Edge", tup("d", "e")) }},
		{"assign-edge", true, func(db *store.Database) error { return db.Assign("Edge", assignRel()) }},
		{"insert-node-2", true, func(db *store.Database) error { return db.Insert("Node", ints(5, 6)...) }},
		{"insert-node-3", true, func(db *store.Database) error { return db.Insert("Node", ints(7)...) }},
		{"insert-edge-3", true, func(db *store.Database) error { return db.Insert("Edge", tup("p", "q")) }},
		{"insert-node-4", true, func(db *store.Database) error { return db.Insert("Node", ints(8, 9)...) }},
	}
}

func simOptions(fs fsx.FS) Options {
	return Options{Sync: SyncAlways, CheckpointEvery: 4, FS: fs}
}

// simEnv abstracts the storage engine under the sweep: how a (possibly
// faulted) workload run opens the database and how a fault-free reopen
// recovers from a surviving image. The workload, oracle, and committed-prefix
// assertions are engine-independent.
type simEnv struct {
	name   string
	open   func(fs fsx.FS) (*Log, *store.Database, error)
	reopen func(fs fsx.FS) (*Log, *store.Database, error)
}

func memSimEnv() simEnv {
	return simEnv{
		name: "memory",
		open: func(fs fsx.FS) (*Log, *store.Database, error) {
			return Open(simDir, simOptions(fs))
		},
		reopen: func(fs fsx.FS) (*Log, *store.Database, error) {
			return Open(simDir, Options{FS: fs})
		},
	}
}

// pagedSimEnv wires the paged engine exactly as the session layer does:
// empty-directory recovery starts over blank pages, snapshot generations
// load as page manifests, and committed checkpoints retire superseded slots.
// A deliberately tiny pool (2 slots of 128 bytes) forces eviction write-backs
// mid-workload, so heap-page writes and the incremental checkpoint's flush,
// heap fsync, and manifest write all appear among the swept fault points.
// Residency is unlimited: materializations never drop mid-run, keeping the
// recorded operation sequence identical across every faulted replay.
func pagedSimEnv() simEnv {
	pagedOpen := func(fs fsx.FS, walOpts Options) (*Log, *store.Database, error) {
		pager, err := pagestore.Open(simDir, pagestore.Config{
			FS: fs, PageSize: 128, PoolPages: 2, ResidentBytes: -1,
		})
		if err != nil {
			return nil, nil, err
		}
		walOpts.NewStore = func() (*store.Database, error) {
			return store.NewDatabaseWith(pager), nil
		}
		walOpts.LoadSnapshot = func(r io.Reader) (*store.Database, error) {
			if err := pager.LoadManifest(r); err != nil {
				return nil, err
			}
			return store.NewDatabaseWith(pager), nil
		}
		walOpts.OnCheckpoint = pager.CheckpointCommitted
		l, db, err := Open(simDir, walOpts)
		if err != nil {
			_ = pager.Close()
			return nil, nil, err
		}
		return l, db, nil
	}
	return simEnv{
		name: "paged",
		open: func(fs fsx.FS) (*Log, *store.Database, error) {
			return pagedOpen(fs, simOptions(fs))
		},
		reopen: func(fs fsx.FS) (*Log, *store.Database, error) {
			return pagedOpen(fs, Options{FS: fs})
		},
	}
}

// runSim opens a log over fs and drives the workload, mirroring each
// successful mutation into a shadow store that never touches the filesystem.
// It returns the shadow (always exactly the committed prefix), the index of
// the first mutation step that failed (-1 if none), and the log and database
// (nil if Open itself failed).
func runSim(t *testing.T, env simEnv, fs fsx.FS, steps []simStep) (shadow *store.Database, firstFailed int, l *Log, db *store.Database, openErr error) {
	t.Helper()
	shadow = store.NewDatabase()
	firstFailed = -1
	l, db, openErr = env.open(fs)
	if openErr != nil {
		return shadow, firstFailed, nil, nil, openErr
	}
	db.SetLogger(l)
	for i, s := range steps {
		if err := s.run(db); err != nil {
			if s.mutates && firstFailed == -1 {
				firstFailed = i
			}
			continue
		}
		if s.mutates {
			if err := s.run(shadow); err != nil {
				t.Fatalf("shadow step %s failed: %v", s.name, err)
			}
		}
	}
	return shadow, firstFailed, l, db, nil
}

// reopenFrom opens the memory-engine database persisted in a surviving
// filesystem image with no faults scripted.
func reopenFrom(t *testing.T, fs fsx.FS) (*Log, *store.Database) {
	t.Helper()
	return envReopen(t, memSimEnv(), fs)
}

// envReopen recovers from a surviving filesystem image with the given
// engine and no faults scripted.
func envReopen(t *testing.T, env simEnv, fs fsx.FS) (*Log, *store.Database) {
	t.Helper()
	l, db, err := env.reopen(fs)
	if err != nil {
		t.Fatalf("reopen from surviving image (%s engine): %v", env.name, err)
	}
	db.SetLogger(l)
	return l, db
}

// verifyUsable appends a probe mutation to a recovered database and checks it
// survives another reopen: recovery must leave the log appendable.
func verifyUsable(t *testing.T, env simEnv, fs fsx.FS, l *Log, db *store.Database) {
	t.Helper()
	if err := db.Declare("Probe", pairType("probe")); err != nil {
		t.Fatalf("recovered database refuses declarations: %v", err)
	}
	if err := db.Insert("Probe", tup("p", "q")); err != nil {
		t.Fatalf("recovered database refuses inserts: %v", err)
	}
	want := saveBytes(t, db)
	if err := l.Close(); err != nil {
		t.Fatalf("closing recovered database: %v", err)
	}
	l2, db2 := envReopen(t, env, fs)
	defer l2.Close()
	if got := saveBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatal("probe mutation after recovery did not survive reopen")
	}
}

// matchesAny reports whether got equals one of the candidate fingerprints.
func matchesAny(got []byte, candidates [][]byte) bool {
	for _, c := range candidates {
		if bytes.Equal(got, c) {
			return true
		}
	}
	return false
}

// TestCrashSimEveryFaultPoint is the every-fault-point sweep. A fault-free
// recording pass enumerates the workload's complete filesystem operation
// sequence; then, for every operation index k, the workload is re-run three
// ways — the operation fails with an I/O error, the machine crashes at it, or
// (for writes) the write is torn short and then the machine crashes — and
// recovery from the surviving state must yield exactly a committed prefix.
func TestCrashSimEveryFaultPoint(t *testing.T) {
	sweepEveryFaultPoint(t, memSimEnv())
}

// TestCrashSimEveryFaultPointPaged runs the same every-fault-point sweep over
// the paged storage engine. The recorded operation sequence now includes heap
// page writes (eviction write-backs and checkpoint flushes), the heap fsync,
// and the incremental page-manifest write inside each checkpoint — every one
// of them is failed, crashed, and torn in turn, and recovery must still yield
// exactly a committed prefix.
func TestCrashSimEveryFaultPointPaged(t *testing.T) {
	sweepEveryFaultPoint(t, pagedSimEnv())
}

func sweepEveryFaultPoint(t *testing.T, env simEnv) {
	steps := simWorkload()

	// Recording pass: fault-free, enumerates the fault points.
	mem := fsx.NewMemFS()
	rec := fsx.NewFaultFS(mem)
	shadow, firstFailed, l, db, err := runSim(t, env, rec, steps)
	if err != nil {
		t.Fatalf("fault-free open: %v", err)
	}
	if firstFailed != -1 {
		t.Fatalf("fault-free run failed at step %q", steps[firstFailed].name)
	}
	if got, want := saveBytes(t, db), saveBytes(t, shadow); !bytes.Equal(got, want) {
		t.Fatal("shadow diverged from the real database on a fault-free run")
	}
	if g := l.Generation(); g < 3 {
		t.Fatalf("workload did not exercise rotation: generation %d", g)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	baselineOps := rec.Ops()
	total := rec.OpCount()
	if total < 30 {
		t.Fatalf("suspiciously few fault points recorded: %d", total)
	}
	if env.name == "paged" {
		// The paged sweep must actually cover the new engine's fault points:
		// heap page writes and the heap fsync that orders them before the
		// checkpoint manifest. opIndex fails the test if either is absent.
		opIndex(t, baselineOps, 0, fsx.OpWrite, "pages.heap")
		opIndex(t, baselineOps, 0, fsx.OpSync, "pages.heap")
	}
	t.Logf("sweeping %d fault points (%s engine)", total, env.name)

	t.Run("error", func(t *testing.T) {
		for k := 0; k < total; k++ {
			t.Run(fmt.Sprintf("%03d-%s", k, baselineOps[k]), func(t *testing.T) {
				simulateError(t, env, steps, k)
			})
		}
	})
	t.Run("crash", func(t *testing.T) {
		for k := 0; k < total; k++ {
			t.Run(fmt.Sprintf("%03d-%s", k, baselineOps[k]), func(t *testing.T) {
				simulateCrash(t, env, steps, fsx.Fault{Index: k, Crash: true})
			})
		}
	})
	t.Run("short-write-crash", func(t *testing.T) {
		for k := 0; k < total; k++ {
			if baselineOps[k].Kind != fsx.OpWrite {
				continue
			}
			for _, short := range []int{3, 11} { // inside the frame header, inside the payload
				t.Run(fmt.Sprintf("%03d-short%d-%s", k, short, baselineOps[k]), func(t *testing.T) {
					simulateCrash(t, env, steps, fsx.Fault{Index: k, Short: short, Crash: true})
				})
			}
		}
	})
}

// simulateError injects a plain I/O error at operation k: the process stays
// alive, so the in-memory state must stay exactly the committed prefix (a
// failed commit is never published), a poisoned log must refuse every later
// append, and a graceful-exit reopen must recover the committed prefix —
// possibly extended by the single faulted record, if its frame fully reached
// the page cache before the error (an fsync failure), but never a partial
// batch and never more than that one record.
func simulateError(t *testing.T, env simEnv, steps []simStep, k int) {
	mem := fsx.NewMemFS()
	ffs := fsx.NewFaultFS(mem)
	ffs.Inject(fsx.Fault{Index: k})
	shadow, firstFailed, l, db, openErr := runSim(t, env, ffs, steps)
	if l != nil {
		// Failed commits must not be published in memory either.
		if got, want := saveBytes(t, db), saveBytes(t, shadow); !bytes.Equal(got, want) {
			t.Fatal("in-memory state diverged from the committed prefix")
		}
		if l.Err() != nil {
			// Poisoned: a direct append must refuse with PoisonedError.
			err := l.Append([]store.Mutation{{Op: store.OpInsert, Name: "Edge", Tuples: []value.Tuple{tup("z", "z")}}}, nil)
			var pe *PoisonedError
			if !errors.As(err, &pe) {
				t.Fatalf("append on poisoned log: got %v, want *PoisonedError", err)
			}
		}
		_ = l.Close() // poisoned close reports the poison; either way the image below is what counts
	} else if openErr == nil {
		t.Fatal("runSim returned no log and no open error")
	}

	expected := [][]byte{saveBytes(t, shadow)}
	if firstFailed >= 0 {
		// The one faulted record may have fully reached the page cache before
		// its fsync failed; a graceful-exit reopen then legitimately replays
		// it. Atomicity still holds: the whole batch or none of it.
		if err := steps[firstFailed].run(shadow); err != nil {
			t.Fatalf("applying faulted step %q to shadow: %v", steps[firstFailed].name, err)
		}
		expected = append(expected, saveBytes(t, shadow))
	}
	img := mem.Image()
	l2, db2 := envReopen(t, env, img)
	if got := saveBytes(t, db2); !matchesAny(got, expected) {
		t.Fatalf("recovered state is neither the committed prefix nor prefix+faulted-record")
	}
	verifyUsable(t, env, img, l2, db2)
}

// simulateCrash injects a crash (optionally preceded by a torn write) at
// operation k. With SyncAlways, every acknowledged commit was fsynced to a
// dir-synced file, so recovery from the crash image — what stable storage
// holds, everything unsynced lost — must be *exactly* the committed prefix.
// Recovery from the volatile image (the page cache, as after a graceful exit)
// may additionally hold the single in-flight record.
func simulateCrash(t *testing.T, env simEnv, steps []simStep, fault fsx.Fault) {
	mem := fsx.NewMemFS()
	ffs := fsx.NewFaultFS(mem)
	ffs.Inject(fault)
	shadow, firstFailed, l, _, _ := runSim(t, env, ffs, steps)
	if l != nil {
		_ = l.Close() // fails after the crash; the images below are what count
	}

	committed := saveBytes(t, shadow)
	crash := mem.CrashImage()
	l2, db2 := envReopen(t, env, crash)
	if got := saveBytes(t, db2); !bytes.Equal(got, committed) {
		t.Fatalf("crash image did not recover exactly the committed prefix")
	}
	verifyUsable(t, env, crash, l2, db2)

	expected := [][]byte{committed}
	if firstFailed >= 0 {
		if err := steps[firstFailed].run(shadow); err != nil {
			t.Fatalf("applying faulted step %q to shadow: %v", steps[firstFailed].name, err)
		}
		expected = append(expected, saveBytes(t, shadow))
	}
	img := mem.Image()
	l3, db3 := envReopen(t, env, img)
	defer l3.Close()
	if got := saveBytes(t, db3); !matchesAny(got, expected) {
		t.Fatalf("volatile image recovered neither the committed prefix nor prefix+in-flight record")
	}
}

// opIndex returns the index of the first operation at or after from whose
// kind matches and whose path contains substr.
func opIndex(t *testing.T, ops []fsx.Op, from int, kind fsx.OpKind, substr string) int {
	t.Helper()
	for i := from; i < len(ops); i++ {
		if ops[i].Kind == kind && strings.Contains(ops[i].Path, substr) {
			return i
		}
	}
	t.Fatalf("no %v op matching %q at or after index %d", kind, substr, from)
	return -1
}

// seedSmall opens a log over fs and commits a declaration and an insert; it
// is the deterministic setup shared by a pilot run (which locates a fault
// index) and the faulted run.
func seedSmall(t *testing.T, fs fsx.FS) (*Log, *store.Database) {
	t.Helper()
	l, db, err := Open(simDir, Options{Sync: SyncAlways, CheckpointEvery: -1, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db.SetLogger(l)
	if err := db.Declare("R", pairType("r")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", tup("a", "b")); err != nil {
		t.Fatal(err)
	}
	return l, db
}

// TestFaultENOSPCMidSnapshot: running out of disk while writing the snapshot
// temp file is a clean checkpoint failure — the previous generation is
// untouched, the error is the ENOSPC (not a poisoned-log error), the log
// still accepts appends, and both a graceful and a crash reopen recover the
// full committed state.
func TestFaultENOSPCMidSnapshot(t *testing.T) {
	// Pilot: locate the first write to the snapshot temp file.
	pmem := fsx.NewMemFS()
	pilot := fsx.NewFaultFS(pmem)
	pl, pdb := seedSmall(t, pilot)
	before := pilot.OpCount()
	if err := pdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	k := opIndex(t, pilot.Ops(), before, fsx.OpWrite, ".tmp")
	_ = pl.Close()

	mem := fsx.NewMemFS()
	ffs := fsx.NewFaultFS(mem)
	ffs.Inject(fsx.Fault{Index: k, Err: syscall.ENOSPC})
	l, db := seedSmall(t, ffs)
	gen := l.Generation()

	err := db.Checkpoint()
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint into a full disk: got %v, want ENOSPC", err)
	}
	if l.Err() != nil {
		t.Fatalf("clean checkpoint failure poisoned the log: %v", l.Err())
	}
	if g := l.Generation(); g != gen {
		t.Fatalf("failed checkpoint advanced the generation to %d", g)
	}
	// The log is still appendable after the failed checkpoint.
	if err := db.Insert("R", tup("c", "d")); err != nil {
		t.Fatalf("append after clean checkpoint failure: %v", err)
	}
	// And the checkpoint succeeds once retried with space available (the
	// fault was single-shot).
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	if n := l.TailRecords(); n != 0 {
		t.Fatalf("retried checkpoint left %d tail records", n)
	}
	want2 := saveBytes(t, db)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Both the crash image and the volatile image recover the full state;
	// the aborted snapshot attempt left nothing that recovery trips over.
	for name, fs := range map[string]fsx.FS{"crash": mem.CrashImage(), "volatile": mem.Image()} {
		l2, db2 := reopenFrom(t, fs)
		if got := saveBytes(t, db2); !bytes.Equal(got, want2) {
			t.Fatalf("%s image: recovered state differs after ENOSPC checkpoint", name)
		}
		l2.Close()
	}
}

// TestFaultFsyncPoisonsLog: a failed per-commit fsync poisons the log — the
// commit reports failure and is not published, there is no fsync retry, every
// later operation fails with PoisonedError, Err exposes the cause, and Close
// (first and repeated) reports the poison instead of success. The crash image
// recovers the pre-fault state exactly.
func TestFaultFsyncPoisonsLog(t *testing.T) {
	// Pilot: locate the fsync of the insert after the seed.
	pmem := fsx.NewMemFS()
	pilot := fsx.NewFaultFS(pmem)
	pl, pdb := seedSmall(t, pilot)
	before := pilot.OpCount()
	if err := pdb.Insert("R", tup("c", "d")); err != nil {
		t.Fatal(err)
	}
	k := opIndex(t, pilot.Ops(), before, fsx.OpSync, "wal-")
	_ = pl.Close()

	cause := errors.New("simulated fsync failure")
	mem := fsx.NewMemFS()
	ffs := fsx.NewFaultFS(mem)
	ffs.Inject(fsx.Fault{Index: k, Err: cause})
	l, db := seedSmall(t, ffs)
	committed := saveBytes(t, db)

	if err := db.Insert("R", tup("c", "d")); !errors.Is(err, cause) {
		t.Fatalf("insert over failed fsync: got %v, want the fsync error", err)
	}
	if rel, _ := db.Get("R"); rel.Len() != 1 {
		t.Fatal("failed commit was published in memory")
	}
	if !errors.Is(l.Err(), cause) {
		t.Fatalf("Err() = %v, want the poisoning fsync failure", l.Err())
	}
	var pe *PoisonedError
	if err := db.Insert("R", tup("e", "f")); !errors.As(err, &pe) {
		t.Fatalf("append on poisoned log: got %v, want *PoisonedError", err)
	}
	if err := l.Sync(); !errors.As(err, &pe) {
		t.Fatalf("sync on poisoned log: got %v, want *PoisonedError", err)
	}
	if err := db.Checkpoint(); !errors.As(err, &pe) {
		t.Fatalf("checkpoint on poisoned log: got %v, want *PoisonedError", err)
	}
	if err := l.Close(); !errors.As(err, &pe) {
		t.Fatalf("close of poisoned log: got %v, want *PoisonedError", err)
	}
	if err := l.Close(); !errors.As(err, &pe) {
		t.Fatalf("repeated close of poisoned log: got %v, want *PoisonedError", err)
	}
	if !errors.Is(l.Err(), cause) {
		t.Fatal("Err() lost the poison after Close")
	}

	crash := mem.CrashImage()
	l2, db2 := reopenFrom(t, crash)
	defer l2.Close()
	if got := saveBytes(t, db2); !bytes.Equal(got, committed) {
		t.Fatal("crash image after poisoned fsync is not the committed prefix")
	}
}

// TestFaultCheckpointRenameDirSyncPoisons: a checkpoint whose snapshot rename
// cannot be made durable (the directory fsync after it fails) is past the
// commit point — it poisons the log and leaves both generations on disk, and
// recovery from either image lands on the committed state.
func TestFaultCheckpointRenameDirSyncPoisons(t *testing.T) {
	// Pilot: locate the directory fsync inside the checkpoint's rotation.
	pmem := fsx.NewMemFS()
	pilot := fsx.NewFaultFS(pmem)
	pl, pdb := seedSmall(t, pilot)
	before := pilot.OpCount()
	if err := pdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	k := opIndex(t, pilot.Ops(), before, fsx.OpSyncDir, simDir)
	_ = pl.Close()

	cause := errors.New("simulated dir-fsync failure")
	mem := fsx.NewMemFS()
	ffs := fsx.NewFaultFS(mem)
	ffs.Inject(fsx.Fault{Index: k, Err: cause})
	l, db := seedSmall(t, ffs)
	committed := saveBytes(t, db)
	gen := l.Generation()

	if err := db.Checkpoint(); !errors.Is(err, cause) {
		t.Fatalf("checkpoint with failed dir fsync: got %v, want the fsync error", err)
	}
	if !errors.Is(l.Err(), cause) {
		t.Fatal("dir-fsync failure past the rename did not poison the log")
	}
	var pe *PoisonedError
	if err := db.Insert("R", tup("c", "d")); !errors.As(err, &pe) {
		t.Fatalf("append after poisoned checkpoint: got %v, want *PoisonedError", err)
	}
	// Both generations stay on disk: it is unknowable which one a crash
	// would surface, so neither may be deleted.
	if !mem.Exists(snapPath(simDir, gen+1)) || !mem.Exists(logPath(simDir, gen+1)) {
		t.Fatal("new generation missing after poisoned checkpoint")
	}
	if !mem.Exists(logPath(simDir, gen)) {
		t.Fatal("old generation deleted despite un-durable rename")
	}
	_ = l.Close()

	for name, fs := range map[string]fsx.FS{"crash": mem.CrashImage(), "volatile": mem.Image()} {
		l2, db2 := reopenFrom(t, fs)
		if got := saveBytes(t, db2); !bytes.Equal(got, committed) {
			t.Fatalf("%s image after poisoned checkpoint is not the committed state", name)
		}
		l2.Close()
	}
}

// TestFaultOpenDirSyncPropagates: the directory fsync that makes a freshly
// created log file durable is load-bearing — a failure there must fail Open,
// not be swallowed (SyncAlways would otherwise acknowledge commits into a
// file whose directory entry a crash can lose).
func TestFaultOpenDirSyncPropagates(t *testing.T) {
	// Pilot: locate the database-directory fsync inside Open (the second
	// SyncDir; the first, on the parent directory, is best-effort).
	pmem := fsx.NewMemFS()
	pilot := fsx.NewFaultFS(pmem)
	pl, _, err := Open(simDir, Options{Sync: SyncAlways, FS: pilot})
	if err != nil {
		t.Fatal(err)
	}
	k := opIndex(t, pilot.Ops(), 0, fsx.OpSyncDir, simDir)
	_ = pl.Close()

	cause := errors.New("simulated dir-fsync failure")
	ffs := fsx.NewFaultFS(fsx.NewMemFS())
	ffs.Inject(fsx.Fault{Index: k, Err: cause})
	if _, _, err := Open(simDir, Options{Sync: SyncAlways, FS: ffs}); !errors.Is(err, cause) {
		t.Fatalf("Open with failed directory fsync: got %v, want the fsync error", err)
	}

	// The parent-directory fsync, by contrast, is best-effort: not every
	// filesystem supports it, and it only covers the one-time creation of
	// the database directory itself.
	pffs := fsx.NewFaultFS(fsx.NewMemFS())
	pffs.Inject(fsx.Fault{Index: k - 1, Err: cause})
	l2, _, err := Open(simDir, Options{Sync: SyncAlways, FS: pffs})
	if err != nil {
		t.Fatalf("Open with failed parent-dir fsync must succeed, got %v", err)
	}
	l2.Close()
}

// TestFaultCheckpointRetryRecovers: Options.CheckpointRetries re-attempts
// cleanly failed checkpoints, so a transient failure while writing the
// snapshot is absorbed; a poisoned log is never retried.
func TestFaultCheckpointRetryRecovers(t *testing.T) {
	pmem := fsx.NewMemFS()
	pilot := fsx.NewFaultFS(pmem)
	pl, pdb := seedSmall(t, pilot)
	before := pilot.OpCount()
	if err := pdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	k := opIndex(t, pilot.Ops(), before, fsx.OpWrite, ".tmp")
	_ = pl.Close()

	mem := fsx.NewMemFS()
	ffs := fsx.NewFaultFS(mem)
	ffs.Inject(fsx.Fault{Index: k, Err: syscall.ENOSPC})
	l, db, err := Open(simDir, Options{Sync: SyncAlways, CheckpointEvery: -1, CheckpointRetries: 2, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	db.SetLogger(l)
	if err := db.Declare("R", pairType("r")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", tup("a", "b")); err != nil {
		t.Fatal(err)
	}
	gen := l.Generation()
	// The transient ENOSPC is absorbed by the retry.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with retries over a transient failure: %v", err)
	}
	if g := l.Generation(); g != gen+1 {
		t.Fatalf("retried checkpoint did not advance the generation: %d", g)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
