// Package parser implements a recursive-descent parser for the DBPL subset:
// modules with TYPE and VAR declarations, SELECTOR and CONSTRUCTOR
// declarations (sections 2.3 and 3 of the paper), and assignment/SHOW
// statements over range expressions with selector and constructor suffixes.
//
// The concrete syntax follows the paper:
//
//	MODULE cad;
//	TYPE parttype   = STRING;
//	TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
//	TYPE aheadrel   = RELATION OF RECORD head, tail: parttype END;
//	VAR Infront: infrontrel;
//
//	CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
//	BEGIN
//	  EACH r IN Rel: TRUE,
//	  <f.front, b.tail> OF EACH f IN Rel, EACH b IN Rel{ahead}: f.back = b.head
//	END ahead;
//
//	Infront := {<"vase","table">, <"table","chair">};
//	SHOW Infront{ahead};
//	END cad.
package parser

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/value"
)

// Error is a parse error with position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

type parser struct {
	toks []lexer.Token
	i    int
}

// ParseModule parses a full DBPL module.
func ParseModule(src string) (*ast.Module, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.module()
}

// ParseSetExpr parses a standalone set expression such as
// {EACH r IN Rel: TRUE}; used by tests and the programmatic API.
func ParseSetExpr(src string) (*ast.SetExpr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.setExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseRange parses a standalone range expression such as
// Infront[hidden_by("table")]{ahead}.
func ParseRange(src string) (*ast.Range, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	r, err := p.rangeExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return r, nil
}

// ParsePred parses a standalone predicate; used by tests.
func ParsePred(src string) (ast.Pred, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pr, err := p.pred()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return pr, nil
}

// ---------------------------------------------------------------------------
// Token plumbing
// ---------------------------------------------------------------------------

func (p *parser) cur() lexer.Token  { return p.toks[p.i] }
func (p *parser) next() lexer.Token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k lexer.Kind) bool {
	return p.toks[p.i].Kind == k
}
func (p *parser) accept(k lexer.Kind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	t := p.cur()
	return t, &Error{Line: t.Line, Col: t.Col,
		Msg: fmt.Sprintf("expected %s, found %s", k, t)}
}

func (p *parser) expectEOF() error {
	if p.at(lexer.EOF) {
		return nil
	}
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col,
		Msg: fmt.Sprintf("unexpected %s after expression", t)}
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) pos() ast.Pos {
	t := p.cur()
	return ast.Pos{Line: t.Line, Col: t.Col}
}

func (p *parser) ident() (string, ast.Pos, error) {
	pos := p.pos()
	t, err := p.expect(lexer.IDENT)
	if err != nil {
		return "", pos, err
	}
	return t.Text, pos, nil
}

// ---------------------------------------------------------------------------
// Modules and declarations
// ---------------------------------------------------------------------------

func (p *parser) module() (*ast.Module, error) {
	if _, err := p.expect(lexer.KwMODULE); err != nil {
		return nil, err
	}
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	m := &ast.Module{Name: name}
	for {
		switch p.cur().Kind {
		case lexer.KwTYPE:
			d, err := p.typeDecl()
			if err != nil {
				return nil, err
			}
			m.Decls = append(m.Decls, d)
		case lexer.KwVAR:
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			m.Decls = append(m.Decls, d)
		case lexer.KwSELECTOR:
			d, err := p.selectorDecl()
			if err != nil {
				return nil, err
			}
			m.Decls = append(m.Decls, d)
		case lexer.KwCONSTRUCTOR:
			d, err := p.constructorDecl()
			if err != nil {
				return nil, err
			}
			m.Decls = append(m.Decls, d)
		case lexer.KwSHOW, lexer.IDENT:
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			m.Stmts = append(m.Stmts, s)
		case lexer.KwEND:
			p.next()
			endName, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			if endName != name {
				return nil, p.errHere("module %q terminated by END %s", name, endName)
			}
			if _, err := p.expect(lexer.Dot); err != nil {
				return nil, err
			}
			return m, nil
		default:
			return nil, p.errHere("expected declaration, statement, or END, found %s", p.cur())
		}
	}
}

func (p *parser) typeDecl() (*ast.TypeDecl, error) {
	pos := p.pos()
	p.next() // TYPE
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Eq); err != nil {
		return nil, err
	}
	te, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return &ast.TypeDecl{Name: name, Type: te, Pos: pos}, nil
}

func (p *parser) typeExpr() (ast.TypeExpr, error) {
	pos := p.pos()
	switch p.cur().Kind {
	case lexer.KwRANGE:
		p.next()
		lo, err := p.expect(lexer.INT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.DotDot); err != nil {
			return nil, err
		}
		hi, err := p.expect(lexer.INT)
		if err != nil {
			return nil, err
		}
		return ast.RangeTypeExpr{Lo: lo.Int, Hi: hi.Int, Pos: pos}, nil

	case lexer.KwRECORD:
		p.next()
		var fields []ast.FieldGroup
		for {
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.Colon); err != nil {
				return nil, err
			}
			ft, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			fields = append(fields, ast.FieldGroup{Names: names, Type: ft})
			if !p.accept(lexer.Semi) {
				break
			}
			if p.at(lexer.KwEND) {
				break
			}
		}
		if _, err := p.expect(lexer.KwEND); err != nil {
			return nil, err
		}
		return ast.RecordTypeExpr{Fields: fields, Pos: pos}, nil

	case lexer.KwRELATION:
		p.next()
		var key []string
		if p.at(lexer.IDENT) {
			ks, err := p.identList()
			if err != nil {
				return nil, err
			}
			key = ks
		}
		if _, err := p.expect(lexer.KwOF); err != nil {
			return nil, err
		}
		elem, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		return ast.RelationTypeExpr{Key: key, Elem: elem, Pos: pos}, nil

	case lexer.KwINTEGER:
		p.next()
		return ast.NamedType{Name: "INTEGER", Pos: pos}, nil
	case lexer.KwCARDINAL:
		p.next()
		return ast.NamedType{Name: "CARDINAL", Pos: pos}, nil
	case lexer.KwSTRINGT:
		p.next()
		return ast.NamedType{Name: "STRING", Pos: pos}, nil
	case lexer.KwBOOLEAN:
		p.next()
		return ast.NamedType{Name: "BOOLEAN", Pos: pos}, nil
	case lexer.IDENT:
		name, _, _ := p.ident()
		return ast.NamedType{Name: name, Pos: pos}, nil
	}
	return nil, p.errHere("expected type expression, found %s", p.cur())
}

func (p *parser) identList() ([]string, error) {
	var names []string
	for {
		name, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		names = append(names, name)
		if !p.accept(lexer.Comma) {
			return names, nil
		}
	}
}

func (p *parser) varDecl() (*ast.VarDecl, error) {
	pos := p.pos()
	p.next() // VAR
	names, err := p.identList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	te, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return &ast.VarDecl{Names: names, Type: te, Pos: pos}, nil
}

// formalParams parses (name,name: type; name: type).
func (p *parser) formalParams() ([]ast.FormalParam, error) {
	var params []ast.FormalParam
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	if p.accept(lexer.RParen) {
		return params, nil
	}
	for {
		names, err := p.identList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Colon); err != nil {
			return nil, err
		}
		te, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			params = append(params, ast.FormalParam{Name: n, Type: te})
		}
		if !p.accept(lexer.Semi) {
			break
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *parser) selectorDecl() (*ast.SelectorDecl, error) {
	pos := p.pos()
	p.next() // SELECTOR
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &ast.SelectorDecl{Name: name, Pos: pos}
	if p.at(lexer.LParen) {
		d.Params, err = p.formalParams()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(lexer.KwFOR); err != nil {
		return nil, err
	}
	d.ForVar, _, err = p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	d.ForType, err = p.typeExpr()
	if err != nil {
		return nil, err
	}
	// Tolerate the paper's trailing empty parameter list after the type and
	// an optional (ignored) result type annotation.
	if p.at(lexer.LParen) {
		if _, err := p.formalParams(); err != nil {
			return nil, err
		}
	}
	if p.accept(lexer.Colon) {
		if _, err := p.typeExpr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.KwBEGIN); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.KwEACH); err != nil {
		return nil, err
	}
	d.BodyVar, _, err = p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.KwIN); err != nil {
		return nil, err
	}
	inVar, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if inVar != d.ForVar {
		return nil, p.errHere("selector %s body must range over %s, found %s",
			name, d.ForVar, inVar)
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	d.Where, err = p.pred()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.KwEND); err != nil {
		return nil, err
	}
	endName, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if endName != name {
		return nil, p.errHere("selector %q terminated by END %s", name, endName)
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) constructorDecl() (*ast.ConstructorDecl, error) {
	pos := p.pos()
	p.next() // CONSTRUCTOR
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &ast.ConstructorDecl{Name: name, Pos: pos}
	if _, err := p.expect(lexer.KwFOR); err != nil {
		return nil, err
	}
	d.ForVar, _, err = p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	d.ForType, err = p.typeExpr()
	if err != nil {
		return nil, err
	}
	if p.at(lexer.LParen) {
		d.Params, err = p.formalParams()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	d.Result, err = p.typeExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.KwBEGIN); err != nil {
		return nil, err
	}
	body, err := p.branches()
	if err != nil {
		return nil, err
	}
	d.Body = body
	if _, err := p.expect(lexer.KwEND); err != nil {
		return nil, err
	}
	endName, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if endName != name {
		return nil, p.errHere("constructor %q terminated by END %s", name, endName)
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *parser) stmt() (ast.Stmt, error) {
	pos := p.pos()
	if p.accept(lexer.KwSHOW) {
		r, err := p.rangeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.Show{Expr: r, Pos: pos}, nil
	}
	target, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	var suffixes []ast.Suffix
	for p.at(lexer.LBrack) || p.at(lexer.LBrace) {
		s, err := p.suffix()
		if err != nil {
			return nil, err
		}
		suffixes = append(suffixes, s)
	}
	if _, err := p.expect(lexer.Assign); err != nil {
		return nil, err
	}
	r, err := p.rangeExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return &ast.Assign{Target: target, Suffixes: suffixes, Expr: r, Pos: pos}, nil
}

// ---------------------------------------------------------------------------
// Ranges and set expressions
// ---------------------------------------------------------------------------

func (p *parser) rangeExpr() (*ast.Range, error) {
	pos := p.pos()
	r := &ast.Range{Pos: pos}
	switch {
	case p.at(lexer.IDENT):
		name, _, _ := p.ident()
		r.Var = name
	case p.at(lexer.LBrace):
		s, err := p.setExpr()
		if err != nil {
			return nil, err
		}
		r.Sub = s
	default:
		return nil, p.errHere("expected relation name or set expression, found %s", p.cur())
	}
	for p.at(lexer.LBrack) || p.at(lexer.LBrace) {
		s, err := p.suffix()
		if err != nil {
			return nil, err
		}
		r.Suffixes = append(r.Suffixes, s)
	}
	return r, nil
}

func (p *parser) suffix() (ast.Suffix, error) {
	pos := p.pos()
	var kind ast.SuffixKind
	var closer lexer.Kind
	switch {
	case p.accept(lexer.LBrack):
		kind, closer = ast.SuffixSelector, lexer.RBrack
	case p.accept(lexer.LBrace):
		kind, closer = ast.SuffixConstructor, lexer.RBrace
	default:
		return ast.Suffix{}, p.errHere("expected '[' or '{', found %s", p.cur())
	}
	name, _, err := p.ident()
	if err != nil {
		return ast.Suffix{}, err
	}
	s := ast.Suffix{Kind: kind, Name: name, Pos: pos}
	if p.accept(lexer.LParen) {
		if !p.accept(lexer.RParen) {
			for {
				a, err := p.arg()
				if err != nil {
					return ast.Suffix{}, err
				}
				s.Args = append(s.Args, a)
				if !p.accept(lexer.Comma) {
					break
				}
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return ast.Suffix{}, err
			}
		}
	}
	if _, err := p.expect(closer); err != nil {
		return ast.Suffix{}, err
	}
	return s, nil
}

// arg parses one actual argument: a string/integer literal (scalar) or a
// range expression (relation or, resolved later, a scalar parameter name).
func (p *parser) arg() (ast.Arg, error) {
	switch p.cur().Kind {
	case lexer.STRING:
		t := p.next()
		return ast.Arg{Scalar: ast.Const{Val: value.Str(t.Text)}}, nil
	case lexer.INT, lexer.Minus:
		t, err := p.term()
		if err != nil {
			return ast.Arg{}, err
		}
		return ast.Arg{Scalar: t}, nil
	default:
		r, err := p.rangeExpr()
		if err != nil {
			return ast.Arg{}, err
		}
		return ast.Arg{Rel: r}, nil
	}
}

func (p *parser) setExpr() (*ast.SetExpr, error) {
	pos := p.pos()
	if _, err := p.expect(lexer.LBrace); err != nil {
		return nil, err
	}
	s := &ast.SetExpr{Pos: pos}
	if p.accept(lexer.RBrace) {
		return s, nil // empty relation literal {}
	}
	inner, err := p.branches()
	if err != nil {
		return nil, err
	}
	s.Branches = inner.Branches
	if _, err := p.expect(lexer.RBrace); err != nil {
		return nil, err
	}
	return s, nil
}

// branches parses a comma-separated union of branches (used both inside
// braces and as a constructor body between BEGIN and END).
func (p *parser) branches() (*ast.SetExpr, error) {
	s := &ast.SetExpr{Pos: p.pos()}
	for {
		br, err := p.branch()
		if err != nil {
			return nil, err
		}
		s.Branches = append(s.Branches, br)
		if !p.accept(lexer.Comma) {
			return s, nil
		}
	}
}

func (p *parser) branch() (ast.Branch, error) {
	pos := p.pos()
	br := ast.Branch{Pos: pos}
	if p.at(lexer.Lt) {
		terms, err := p.tupleTerms()
		if err != nil {
			return br, err
		}
		if p.accept(lexer.KwOF) {
			br.Target = terms
		} else {
			// Literal tuple branch: every term must be constant.
			br.Literal = terms
			return br, nil
		}
	}
	for {
		if _, err := p.expect(lexer.KwEACH); err != nil {
			return br, err
		}
		bpos := p.pos()
		// The paper abbreviates EACH f IN Rel, EACH b IN Rel as
		// EACH f,b IN Rel; accept both.
		vars, err := p.identList()
		if err != nil {
			return br, err
		}
		if _, err := p.expect(lexer.KwIN); err != nil {
			return br, err
		}
		r, err := p.rangeExpr()
		if err != nil {
			return br, err
		}
		for i, v := range vars {
			rng := r
			if i > 0 {
				rng = ast.CopyRange(r)
			}
			br.Binds = append(br.Binds, ast.Binding{Var: v, Range: rng, Pos: bpos})
		}
		// A comma continues the binding list only if followed by EACH;
		// otherwise it separates branches and is handled by the caller.
		if p.at(lexer.Comma) && p.toks[p.i+1].Kind == lexer.KwEACH {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return br, err
	}
	w, err := p.pred()
	if err != nil {
		return br, err
	}
	br.Where = w
	return br, nil
}

// tupleTerms parses <term, term, ...>.
func (p *parser) tupleTerms() ([]ast.Term, error) {
	if _, err := p.expect(lexer.Lt); err != nil {
		return nil, err
	}
	var terms []ast.Term
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		if !p.accept(lexer.Comma) {
			break
		}
	}
	if _, err := p.expect(lexer.Gt); err != nil {
		return nil, err
	}
	return terms, nil
}

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

func (p *parser) pred() (ast.Pred, error) {
	l, err := p.andPred()
	if err != nil {
		return nil, err
	}
	for p.accept(lexer.KwOR) {
		r, err := p.andPred()
		if err != nil {
			return nil, err
		}
		l = ast.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) andPred() (ast.Pred, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.accept(lexer.KwAND) {
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = ast.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) factor() (ast.Pred, error) {
	pos := p.pos()
	switch p.cur().Kind {
	case lexer.KwNOT:
		p.next()
		f, err := p.factor()
		if err != nil {
			return nil, err
		}
		return ast.Not{P: f}, nil

	case lexer.KwTRUE:
		p.next()
		return ast.BoolLit{Val: true}, nil
	case lexer.KwFALSE:
		p.next()
		return ast.BoolLit{Val: false}, nil

	case lexer.KwSOME, lexer.KwALL:
		all := p.next().Kind == lexer.KwALL
		// Multi-variable quantification (the paper's SOME r1,r2 IN Objects)
		// desugars to nested quantifiers over the same range.
		vars, err := p.identList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.KwIN); err != nil {
			return nil, err
		}
		r, err := p.rangeExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.LParen); err != nil {
			return nil, err
		}
		body, err := p.pred()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		out := ast.Quant{All: all, Var: vars[len(vars)-1], Range: r, Body: body, Pos: pos}
		for i := len(vars) - 2; i >= 0; i-- {
			out = ast.Quant{All: all, Var: vars[i], Range: ast.CopyRange(r), Body: out, Pos: pos}
		}
		return out, nil

	case lexer.Lt:
		// <t1,...,tn> IN range — explicit tuple membership.
		terms, err := p.tupleTerms()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.KwIN); err != nil {
			return nil, err
		}
		r, err := p.rangeExpr()
		if err != nil {
			return nil, err
		}
		return ast.Member{Terms: terms, Range: r, Pos: pos}, nil

	case lexer.LParen:
		// Could parenthesize a predicate or an arithmetic term. Try the
		// predicate reading first with backtracking.
		save := p.i
		p.next()
		inner, err := p.pred()
		if err == nil {
			if _, err2 := p.expect(lexer.RParen); err2 == nil {
				// If a comparison operator follows, this was a term paren.
				if !p.atCmpOp() && !p.atArithOp() {
					return inner, nil
				}
			}
		}
		p.i = save
		return p.cmpOrMember()
	}
	return p.cmpOrMember()
}

func (p *parser) atCmpOp() bool {
	switch p.cur().Kind {
	case lexer.Eq, lexer.Ne, lexer.Lt, lexer.Le, lexer.Gt, lexer.Ge:
		return true
	}
	return false
}

func (p *parser) atArithOp() bool {
	switch p.cur().Kind {
	case lexer.Plus, lexer.Minus, lexer.Star, lexer.KwDIV, lexer.KwMOD:
		return true
	}
	return false
}

// cmpOrMember parses `term cmpop term` or `ident IN range`.
func (p *parser) cmpOrMember() (ast.Pred, error) {
	pos := p.pos()
	// Bare identifier followed by IN is tuple-variable membership.
	if p.at(lexer.IDENT) && p.toks[p.i+1].Kind == lexer.KwIN {
		v, _, _ := p.ident()
		p.next() // IN
		r, err := p.rangeExpr()
		if err != nil {
			return nil, err
		}
		return ast.Member{VarTuple: v, Range: r, Pos: pos}, nil
	}
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	var op ast.CmpOp
	switch p.cur().Kind {
	case lexer.Eq:
		op = ast.OpEq
	case lexer.Ne:
		op = ast.OpNe
	case lexer.Lt:
		op = ast.OpLt
	case lexer.Le:
		op = ast.OpLe
	case lexer.Gt:
		op = ast.OpGt
	case lexer.Ge:
		op = ast.OpGe
	default:
		return nil, p.errHere("expected comparison operator, found %s", p.cur())
	}
	p.next()
	r, err := p.term()
	if err != nil {
		return nil, err
	}
	return ast.Cmp{Op: op, L: l, R: r}, nil
}

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

func (p *parser) term() (ast.Term, error) {
	l, err := p.mulTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.ArithOp
		switch p.cur().Kind {
		case lexer.Plus:
			op = ast.OpAdd
		case lexer.Minus:
			op = ast.OpSub
		default:
			return l, nil
		}
		p.next()
		r, err := p.mulTerm()
		if err != nil {
			return nil, err
		}
		l = ast.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) mulTerm() (ast.Term, error) {
	l, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.ArithOp
		switch p.cur().Kind {
		case lexer.Star:
			op = ast.OpMul
		case lexer.KwDIV:
			op = ast.OpDiv
		case lexer.KwMOD:
			op = ast.OpMod
		default:
			return l, nil
		}
		p.next()
		r, err := p.atom()
		if err != nil {
			return nil, err
		}
		l = ast.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) atom() (ast.Term, error) {
	pos := p.pos()
	switch p.cur().Kind {
	case lexer.INT:
		t := p.next()
		return ast.Const{Val: value.Int(t.Int)}, nil
	case lexer.Minus:
		p.next()
		inner, err := p.atom()
		if err != nil {
			return nil, err
		}
		if c, ok := inner.(ast.Const); ok && c.Val.Kind() == value.KindInt {
			return ast.Const{Val: value.Int(-c.Val.AsInt())}, nil
		}
		return ast.Arith{Op: ast.OpSub, L: ast.Const{Val: value.Int(0)}, R: inner}, nil
	case lexer.STRING:
		t := p.next()
		return ast.Const{Val: value.Str(t.Text)}, nil
	case lexer.KwTRUE:
		p.next()
		return ast.Const{Val: value.Bool(true)}, nil
	case lexer.KwFALSE:
		p.next()
		return ast.Const{Val: value.Bool(false)}, nil
	case lexer.LParen:
		p.next()
		inner, err := p.term()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return inner, nil
	case lexer.IDENT:
		name, _, _ := p.ident()
		if p.accept(lexer.Dot) {
			attr, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ast.Field{Var: name, Attr: attr, Pos: pos}, nil
		}
		return ast.Param{Name: name, Pos: pos}, nil
	}
	return nil, p.errHere("expected term, found %s", p.cur())
}
